(* Tests for the CDCL solver, the Tseitin encoder and the equivalence
   checker. *)

let rng = Rand64.create 23L

let test_trivial () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ Solver.pos v ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "model" true (Solver.model_value s v)

let test_empty_clause () =
  let s = Solver.create () in
  Solver.add_clause s [];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_unit_conflict () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ Solver.pos v ];
  Solver.add_clause s [ Solver.neg v ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_chain_implication () =
  (* x0 & (x_i -> x_{i+1}) & !x_n  is unsat *)
  let n = 50 in
  let s = Solver.create () in
  let vs = Array.init (n + 1) (fun _ -> Solver.new_var s) in
  Solver.add_clause s [ Solver.pos vs.(0) ];
  for i = 0 to n - 1 do
    Solver.add_clause s [ Solver.neg vs.(i); Solver.pos vs.(i + 1) ]
  done;
  Solver.add_clause s [ Solver.neg vs.(n) ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

(* Pigeonhole principle: n+1 pigeons, n holes — classically hard UNSAT. *)
let pigeonhole s pigeons holes =
  let v = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s)) in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> Solver.pos v.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Solver.add_clause s [ Solver.neg v.(p1).(h); Solver.neg v.(p2).(h) ]
      done
    done
  done

let test_pigeonhole_unsat () =
  let s = Solver.create () in
  pigeonhole s 6 5;
  Alcotest.(check bool) "php(6,5) unsat" true (Solver.solve s = Solver.Unsat)

let test_pigeonhole_sat () =
  let s = Solver.create () in
  pigeonhole s 5 5;
  Alcotest.(check bool) "php(5,5) sat" true (Solver.solve s = Solver.Sat)

let test_budget () =
  let s = Solver.create () in
  pigeonhole s 9 8;
  Alcotest.(check bool) "tiny budget -> unknown" true
    (Solver.solve ~conflict_budget:5 s = Solver.Unknown)

(* Random 3-CNF checked against brute force. *)
let brute_force nvars clauses =
  let rec try_assign a =
    if a >= 1 lsl nvars then false
    else
      let ok =
        List.for_all
          (List.exists (fun l ->
               let v = l lsr 1 and s = l land 1 = 0 in
               (a land (1 lsl v) <> 0) = s))
          clauses
      in
      ok || try_assign (a + 1)
  in
  try_assign 0

let prop_random_3cnf =
  QCheck.Test.make ~name:"random 3-cnf vs brute force" ~count:100
    (QCheck.make QCheck.Gen.(int_range 3 8))
    (fun nvars ->
      let nclauses = 3 * nvars in
      let clauses =
        List.init nclauses (fun _ ->
            List.init 3 (fun _ ->
                let v = Rand64.int rng nvars in
                if Rand64.bool rng then 2 * v else (2 * v) + 1))
      in
      let s = Solver.create () in
      for _ = 1 to nvars do
        ignore (Solver.new_var s)
      done;
      List.iter (Solver.add_clause s) clauses;
      let expect = brute_force nvars clauses in
      match Solver.solve s with
      | Solver.Sat ->
          expect
          && List.for_all
               (List.exists (fun l ->
                    Solver.model_value s (l lsr 1) = (l land 1 = 0)))
               clauses
      | Solver.Unsat -> not expect
      | Solver.Unknown -> false)

let test_incremental () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Solver.pos a; Solver.pos b ];
  Alcotest.(check bool) "sat 1" true (Solver.solve s = Solver.Sat);
  Solver.add_clause s [ Solver.neg a ];
  Alcotest.(check bool) "sat 2" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "b forced" true (Solver.model_value s b);
  Solver.add_clause s [ Solver.neg b ];
  Alcotest.(check bool) "unsat 3" true (Solver.solve s = Solver.Unsat)

(* ---- Tseitin + CEC ---- *)

let full_adder g a b c =
  let s = Aig.mk_xor g (Aig.mk_xor g a b) c in
  let cy = Aig.mk_maj3 g a b c in
  (s, cy)

let build_adder_variant variant n =
  let g = Aig.create () in
  let xs = Array.init n (fun _ -> Aig.add_input g) in
  let ys = Array.init n (fun _ -> Aig.add_input g) in
  let carry = ref Aig.lit_false in
  for i = 0 to n - 1 do
    let s, c =
      match variant with
      | `Xor -> full_adder g xs.(i) ys.(i) !carry
      | `Mux ->
          (* same function built from muxes *)
          let axb = Aig.mk_mux g xs.(i) (Aig.lnot ys.(i)) ys.(i) in
          let s = Aig.mk_mux g axb (Aig.lnot !carry) !carry in
          let c = Aig.mk_mux g axb !carry xs.(i) in
          (s, c)
    in
    Aig.add_output g (Printf.sprintf "s%d" i) s;
    carry := c
  done;
  Aig.add_output g "cout" !carry;
  g

let test_cnf_encode () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g in
  let y = Aig.mk_and g a (Aig.lnot b) in
  Aig.add_output g "y" y;
  let s = Solver.create () in
  let vars = Cnf.encode s g in
  (* force y true: must imply a=1, b=0 *)
  Solver.add_clause s [ Cnf.lit_of vars y ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "a true" true (Solver.model_value s vars.(Aig.node_of a));
  Alcotest.(check bool) "b false" false (Solver.model_value s vars.(Aig.node_of b))

let test_cec_equivalent () =
  let a = build_adder_variant `Xor 8 in
  let b = build_adder_variant `Mux 8 in
  Alcotest.(check bool) "adders equivalent" true (Cec.equivalent a b)

let test_cec_inequivalent () =
  let a = build_adder_variant `Xor 6 in
  let b = build_adder_variant `Xor 6 in
  (* corrupt one output of b *)
  let name, l = Aig.output b 3 in
  ignore name;
  Aig.set_output b 3 (Aig.lnot l);
  (match Cec.check a b with
  | Cec.Inequivalent cex ->
      let oa = Aig.eval a cex and ob = Aig.eval b cex in
      Alcotest.(check bool) "cex distinguishes" true (oa <> ob)
  | _ -> Alcotest.fail "expected inequivalence")

let test_cec_sim_filter () =
  (* constant-0 vs constant-1 single output: found by simulation *)
  let a = Aig.create () in
  let _ = Aig.add_input a in
  Aig.add_output a "o" Aig.lit_false;
  let b = Aig.create () in
  let _ = Aig.add_input b in
  Aig.add_output b "o" Aig.lit_true;
  match Cec.check a b with
  | Cec.Inequivalent _ -> ()
  | _ -> Alcotest.fail "expected inequivalence"

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "unit conflict" `Quick test_unit_conflict;
          Alcotest.test_case "implication chain" `Quick test_chain_implication;
          Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
          Alcotest.test_case "pigeonhole sat" `Quick test_pigeonhole_sat;
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "incremental" `Quick test_incremental;
          qt prop_random_3cnf;
        ] );
      ( "cec",
        [
          Alcotest.test_case "encode" `Quick test_cnf_encode;
          Alcotest.test_case "equivalent adders" `Quick test_cec_equivalent;
          Alcotest.test_case "inequivalent" `Quick test_cec_inequivalent;
          Alcotest.test_case "sim filter" `Quick test_cec_sim_filter;
        ] );
    ]
