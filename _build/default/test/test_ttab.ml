(* Tests for the truth-table substrate: Tt word-level operations checked
   against naive per-assignment references, and the NPN machinery. *)

let tt_testable = Alcotest.testable Tt.pp Tt.equal

(* Naive reference: a function as (int -> bool) over n vars. *)
let tt_matches_fun n tt f =
  let ok = ref true in
  for a = 0 to (1 lsl n) - 1 do
    if Tt.eval tt a <> f a then ok := false
  done;
  !ok

let rng = Rand64.create 7L

let random_tt n =
  if n <= 6 then Tt.of_bits n (Rand64.next rng)
  else
    Tt.of_words n (Array.init (1 lsl (n - 6)) (fun _ -> Rand64.next rng))

let arbitrary_nvars = QCheck.Gen.int_range 1 9

let arb_tt =
  QCheck.make
    ~print:(fun t -> Format.asprintf "%a" Tt.pp t)
    QCheck.Gen.(
      arbitrary_nvars >>= fun n ->
      return (random_tt n))

let test_consts () =
  Alcotest.(check bool) "const0 is 0" true (Tt.is_const0 (Tt.const0 5));
  Alcotest.(check bool) "const1 is 1" true (Tt.is_const1 (Tt.const1 9));
  Alcotest.(check int) "count const1" 512 (Tt.count_ones (Tt.const1 9));
  Alcotest.(check int) "count const1 small" 8 (Tt.count_ones (Tt.const1 3))

let test_var () =
  for n = 1 to 9 do
    for i = 0 to n - 1 do
      let v = Tt.var n i in
      assert (tt_matches_fun n v (fun a -> a land (1 lsl i) <> 0));
      Alcotest.(check int)
        (Printf.sprintf "var %d/%d balanced" i n)
        (1 lsl (n - 1))
        (Tt.count_ones v)
    done
  done

let test_ops () =
  for n = 1 to 8 do
    let a = random_tt n and b = random_tt n in
    assert (tt_matches_fun n (Tt.band a b) (fun x -> Tt.eval a x && Tt.eval b x));
    assert (tt_matches_fun n (Tt.bor a b) (fun x -> Tt.eval a x || Tt.eval b x));
    assert (tt_matches_fun n (Tt.bxor a b) (fun x -> Tt.eval a x <> Tt.eval b x));
    assert (tt_matches_fun n (Tt.bnot a) (fun x -> not (Tt.eval a x)))
  done;
  Alcotest.(check pass) "pointwise ops agree with eval" () ()

let prop_shannon =
  QCheck.Test.make ~name:"shannon expansion" ~count:200 arb_tt (fun t ->
      let n = Tt.nvars t in
      let i = Rand64.int rng n in
      let v = Tt.var n i in
      Tt.equal t (Tt.mux v (Tt.cofactor1 t i) (Tt.cofactor0 t i)))

let prop_cofactor_vacuous =
  QCheck.Test.make ~name:"cofactor removes dependency" ~count:200 arb_tt
    (fun t ->
      let n = Tt.nvars t in
      let i = Rand64.int rng n in
      (not (Tt.depends_on (Tt.cofactor0 t i) i))
      && not (Tt.depends_on (Tt.cofactor1 t i) i))

let prop_flip_involutive =
  QCheck.Test.make ~name:"flip twice = id" ~count:200 arb_tt (fun t ->
      let i = Rand64.int rng (Tt.nvars t) in
      Tt.equal t (Tt.flip (Tt.flip t i) i))

let prop_flip_semantics =
  QCheck.Test.make ~name:"flip semantics" ~count:100 arb_tt (fun t ->
      let n = Tt.nvars t in
      let i = Rand64.int rng n in
      tt_matches_fun n (Tt.flip t i) (fun a -> Tt.eval t (a lxor (1 lsl i))))

let prop_swap_adjacent =
  QCheck.Test.make ~name:"swap_adjacent semantics" ~count:200 arb_tt (fun t ->
      let n = Tt.nvars t in
      QCheck.assume (n >= 2);
      let i = Rand64.int rng (n - 1) in
      let swap_bits a =
        let bi = (a lsr i) land 1 and bj = (a lsr (i + 1)) land 1 in
        let a = a land lnot ((1 lsl i) lor (1 lsl (i + 1))) in
        a lor (bj lsl i) lor (bi lsl (i + 1))
      in
      tt_matches_fun n (Tt.swap_adjacent t i) (fun a -> Tt.eval t (swap_bits a)))

let prop_swap =
  QCheck.Test.make ~name:"swap semantics" ~count:200 arb_tt (fun t ->
      let n = Tt.nvars t in
      QCheck.assume (n >= 2);
      let i = Rand64.int rng n and j = Rand64.int rng n in
      let swap_bits a =
        let bi = (a lsr i) land 1 and bj = (a lsr j) land 1 in
        let a = a land lnot ((1 lsl i) lor (1 lsl j)) in
        a lor (bj lsl i) lor (bi lsl j)
      in
      tt_matches_fun n (Tt.swap t i j) (fun a -> Tt.eval t (swap_bits a)))

let random_perm n =
  let p = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Rand64.int rng (i + 1) in
    let tmp = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- tmp
  done;
  p

let prop_permute =
  QCheck.Test.make ~name:"permute semantics" ~count:200 arb_tt (fun t ->
      let n = Tt.nvars t in
      let p = random_perm n in
      (* (permute t p) a = t b  where bit p.(i) of b = bit i of a *)
      let remap a =
        let b = ref 0 in
        for i = 0 to n - 1 do
          if a land (1 lsl i) <> 0 then b := !b lor (1 lsl p.(i))
        done;
        !b
      in
      tt_matches_fun n (Tt.permute t p) (fun a -> Tt.eval t (remap a)))

let prop_count_ones =
  QCheck.Test.make ~name:"count_ones matches eval" ~count:100 arb_tt (fun t ->
      let n = Tt.nvars t in
      let c = ref 0 in
      for a = 0 to (1 lsl n) - 1 do
        if Tt.eval t a then incr c
      done;
      !c = Tt.count_ones t)

let prop_shrink =
  QCheck.Test.make ~name:"shrink_to_support" ~count:200 arb_tt (fun t ->
      let small, map = Tt.shrink_to_support t in
      Tt.nvars small = Array.length map
      && List.for_all
           (fun i -> Tt.depends_on small i)
           (List.init (Tt.nvars small) (fun i -> i))
      &&
      let n = Tt.nvars t in
      let ok = ref true in
      for a = 0 to (1 lsl n) - 1 do
        let b = ref 0 in
        Array.iteri
          (fun newi oldi ->
            if a land (1 lsl oldi) <> 0 then b := !b lor (1 lsl newi))
          map;
        if Tt.eval t a <> Tt.eval small !b then ok := false
      done;
      !ok)

let test_support () =
  let n = 8 in
  (* f = x1 XOR x6 *)
  let t = Tt.bxor (Tt.var n 1) (Tt.var n 6) in
  Alcotest.(check (list int)) "support" [ 1; 6 ] (Tt.support t);
  let small, map = Tt.shrink_to_support t in
  Alcotest.(check int) "shrunk size" 2 (Tt.nvars small);
  Alcotest.(check (array int)) "map" [| 1; 6 |] map;
  Alcotest.(check tt_testable) "shrunk is xor" (Tt.bxor (Tt.var 2 0) (Tt.var 2 1)) small

let test_extend () =
  let t = Tt.bxor (Tt.var 3 0) (Tt.var 3 2) in
  let e = Tt.extend t 8 in
  Alcotest.(check (list int)) "extend support" [ 0; 2 ] (Tt.support e);
  assert (tt_matches_fun 8 e (fun a -> (a land 1 <> 0) <> (a land 4 <> 0)));
  Alcotest.(check pass) "extend semantics" () ()

(* ---------------- NPN ---------------- *)

let tt6_of_word w = Tt.of_bits 6 w

let prop_npn_variants =
  QCheck.Test.make ~name:"npn variants match Tt reference" ~count:20
    (QCheck.make QCheck.Gen.(int_range 1 6))
    (fun k ->
      let w = (Tt.words (random_tt 6)).(0) in
      (* make the function depend on the first k vars only *)
      let t = ref (tt6_of_word w) in
      for i = k to 5 do
        t := Tt.cofactor0 !t i
      done;
      let base = (Tt.words !t).(0) in
      let ok = ref true in
      let checked = ref 0 in
      Npn.enumerate k base (fun v tr ->
          if !checked < 64 then begin
            incr checked;
            (* reference: apply permutation, phases, output negation via Tt *)
            let r = ref (tt6_of_word base) in
            let full_perm = Array.init 6 (fun i ->
                if i < k then tr.Npn.perm.(i) else i) in
            r := Tt.permute !r full_perm;
            for i = 0 to k - 1 do
              if tr.Npn.phase land (1 lsl i) <> 0 then r := Tt.flip !r i
            done;
            if tr.Npn.neg then r := Tt.bnot !r;
            if (Tt.words !r).(0) <> v then ok := false
          end);
      !ok)

let prop_npn_canonical_invariant =
  QCheck.Test.make ~name:"canonical invariant under variants" ~count:20
    (QCheck.make QCheck.Gen.(int_range 1 4))
    (fun k ->
      let t = ref (tt6_of_word (Rand64.next rng)) in
      for i = k to 5 do
        t := Tt.cofactor0 !t i
      done;
      let base = (Tt.words !t).(0) in
      let c = Npn.canonical k base in
      let ok = ref true in
      let seen = ref 0 in
      Npn.enumerate k base (fun v _ ->
          if !seen < 32 then begin
            incr seen;
            if Npn.canonical k v <> c then ok := false
          end);
      !ok)

let test_npn_class_counts () =
  (* Known values: 4 NPN classes of 2-var functions, 14 of 3-var. *)
  Alcotest.(check int) "npn classes n=2" 4 (Npn.num_classes 2);
  Alcotest.(check int) "npn classes n=3" 14 (Npn.num_classes 3)

let test_npn_class_count_4 () =
  (* The classic result: 222 NPN classes of 4-variable functions. *)
  Alcotest.(check int) "npn classes n=4" 222 (Npn.num_classes 4)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ttab"
    [
      ( "tt-basics",
        [
          Alcotest.test_case "constants" `Quick test_consts;
          Alcotest.test_case "projections" `Quick test_var;
          Alcotest.test_case "pointwise ops" `Quick test_ops;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "extend" `Quick test_extend;
        ] );
      ( "tt-props",
        [
          qt prop_shannon;
          qt prop_cofactor_vacuous;
          qt prop_flip_involutive;
          qt prop_flip_semantics;
          qt prop_swap_adjacent;
          qt prop_swap;
          qt prop_permute;
          qt prop_count_ones;
          qt prop_shrink;
        ] );
      ( "npn",
        [
          qt prop_npn_variants;
          qt prop_npn_canonical_invariant;
          Alcotest.test_case "class counts 2,3" `Quick test_npn_class_counts;
          Alcotest.test_case "class count 4" `Slow test_npn_class_count_4;
        ] );
    ]
