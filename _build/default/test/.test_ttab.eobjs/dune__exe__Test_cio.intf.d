test/test_cio.mli:
