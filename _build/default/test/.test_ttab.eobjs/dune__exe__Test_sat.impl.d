test/test_sat.ml: Aig Alcotest Array Cec Cnf List Printf QCheck QCheck_alcotest Rand64 Solver
