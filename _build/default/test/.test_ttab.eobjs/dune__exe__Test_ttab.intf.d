test/test_ttab.mli:
