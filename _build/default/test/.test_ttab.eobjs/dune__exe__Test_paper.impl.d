test/test_paper.ml: Aig Alcotest Arith Catalog Cell_netlist Core Coverage Experiments Fabric Lazy List Mapped String Switchsim
