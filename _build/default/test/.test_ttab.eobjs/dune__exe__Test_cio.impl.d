test/test_cio.ml: Aig Alcotest Arith Array Bench_fmt Blif Cec Cell_lib Ecc Filename Genlib In_channel List Logic_gen Mapped Mapper String Sys
