test/test_ttab.ml: Alcotest Array Format List Npn Printf QCheck QCheck_alcotest Rand64 Tt
