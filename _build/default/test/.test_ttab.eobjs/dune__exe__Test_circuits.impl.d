test/test_circuits.ml: Aig Alcotest Alu Arith Array Bench_suite Bitvec Crypto Ecc Int64 List Printf Rand64
