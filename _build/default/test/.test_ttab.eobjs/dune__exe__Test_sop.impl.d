test/test_sop.ml: Alcotest Array Cube Factored Format List QCheck QCheck_alcotest Rand64 Sop Tt
