test/test_synth.ml: Aig Alcotest Arith Array Cec Ecc Int64 List Printf Rand64 Synth
