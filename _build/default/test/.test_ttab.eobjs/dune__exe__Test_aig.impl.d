test/test_aig.ml: Aig Alcotest Array Cut Int64 List Printf Rand64 Tt
