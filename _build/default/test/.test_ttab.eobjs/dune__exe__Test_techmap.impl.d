test/test_techmap.ml: Aig Alcotest Alu Arith Array Catalog Cec Cell_lib Cell_netlist Ecc Gate_spec Genlib Int64 List Mapped Mapper Npn Printf Rand64 Synth
