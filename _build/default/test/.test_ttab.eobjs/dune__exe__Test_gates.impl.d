test/test_gates.ml: Alcotest Catalog Cell_netlist Charlib Gate_spec List Paper_data Printf Switchsim Tt
