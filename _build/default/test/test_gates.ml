(* Tests for the gate catalog, netlist elaboration, sizing, switch-level
   functionality and the Table 2 characterization. *)

open Cell_netlist

let test_catalog_size () =
  Alcotest.(check int) "46 functions" 46 (List.length Catalog.all);
  List.iteri
    (fun i e ->
      Alcotest.(check int) "index" i e.Catalog.index;
      Alcotest.(check string) "name" (Printf.sprintf "F%02d" i) e.Catalog.name)
    Catalog.all

let test_cmos_subset () =
  (* The paper: exactly F00, F02, F03, F10, F11, F12, F13. *)
  let names = List.map (fun e -> e.Catalog.name) Catalog.cmos_subset in
  Alcotest.(check (list string)) "cmos subset"
    [ "F00"; "F02"; "F03"; "F10"; "F11"; "F12"; "F13" ]
    names

let test_distinct_functions () =
  (* All 46 catalog functions are pairwise distinct as truth tables. *)
  let tts = List.map (fun e -> Gate_spec.tt6 e.Catalog.spec) Catalog.all in
  let uniq = List.sort_uniq compare tts in
  Alcotest.(check int) "distinct" 46 (List.length uniq)

let test_distinct_npn_46 () =
  (* Sec. 3.1: the 46 gates are distinct even up to input-polarity swaps
     only when XOR phase freedom is not applied; however no two distinct
     catalog entries may be equal as raw functions of their pins.  Check a
     stronger structural claim: arities match the variable lists. *)
  List.iter
    (fun e ->
      let sup = Tt.support (Gate_spec.to_tt 6 e.Catalog.spec) in
      Alcotest.(check (list int))
        (e.Catalog.name ^ " support")
        (Gate_spec.vars e.Catalog.spec) sup)
    Catalog.all

let test_max_stack_bound () =
  (* Table 1's defining constraint: no more than 3 elements in series. *)
  List.iter
    (fun e ->
      let s = Gate_spec.max_stack e.Catalog.spec in
      if s < 1 || s > 3 then
        Alcotest.failf "%s has series depth %d" e.Catalog.name s)
    Catalog.all;
  Alcotest.(check pass) "series depth within 3" () ()

let test_complement_form () =
  List.iter
    (fun e ->
      let tt = Gate_spec.to_tt 6 e.Catalog.spec in
      let ctt = Gate_spec.to_tt 6 (Gate_spec.complement_form e.Catalog.spec) in
      if not (Tt.equal (Tt.bnot tt) ctt) then
        Alcotest.failf "complement_form wrong for %s" e.Catalog.name)
    Catalog.all;
  Alcotest.(check pass) "complement forms" () ()

(* ---- elaboration and electrical checks ---- *)

let families =
  [ Tg_static; Tg_pseudo; Pass_pseudo; Pass_static ]

let test_all_cells_function () =
  (* Switch-level simulation: every cell of every family implements its
     spec (inverted where the family is inverting). *)
  List.iter
    (fun fam ->
      List.iter
        (fun e ->
          let c = elaborate fam e.Catalog.spec in
          if not (Switchsim.check_function c) then
            Alcotest.failf "%s/%s misbehaves" (family_name fam) e.Catalog.name)
        Catalog.all)
    families;
  List.iter
    (fun e ->
      let c = elaborate Cmos e.Catalog.spec in
      if not (Switchsim.check_function c) then
        Alcotest.failf "cmos/%s misbehaves" e.Catalog.name)
    Catalog.cmos_subset;
  Alcotest.(check pass) "all cells implement their spec" () ()

let test_full_swing () =
  (* The paper's Sec. 3.1 claim: transmission-gate static cells are full
     swing on every assignment; so are CMOS cells, pseudo cells (the weak
     PU is a real pull to VDD) and restored pass-static cells. *)
  List.iter
    (fun e ->
      let c = elaborate Tg_static e.Catalog.spec in
      if not (Switchsim.full_swing c) then
        Alcotest.failf "tg-static %s not full swing" e.Catalog.name)
    Catalog.all;
  Alcotest.(check pass) "tg static full swing" () ()

let test_pass_network_degrades () =
  (* A naked pass-transistor XOR network (pass-pseudo pull-down before any
     restoration) must show degraded pull for some assignment — the Sec. 3
     motivation for transmission gates.  F01 = A xor B. *)
  let c = elaborate Pass_pseudo (Catalog.find "F01").Catalog.spec in
  let degraded = ref false in
  for a = 0 to 3 do
    match Switchsim.cell_output c (fun v -> a land (1 lsl v) <> 0) with
    | Switchsim.Driven (Switchsim.L0, Switchsim.Degraded) -> degraded := true
    | _ -> ()
  done;
  Alcotest.(check bool) "some pulldown degraded" true !degraded

let test_no_contention_no_float () =
  List.iter
    (fun e ->
      let c = elaborate Tg_static e.Catalog.spec in
      let n = Gate_spec.arity e.Catalog.spec in
      for a = 0 to (1 lsl n) - 1 do
        match Switchsim.cell_output c (fun v -> a land (1 lsl v) <> 0) with
        | Switchsim.Contention -> Alcotest.failf "%s contention" e.Catalog.name
        | Switchsim.Floating -> Alcotest.failf "%s floating" e.Catalog.name
        | Switchsim.Driven _ -> ()
      done)
    Catalog.all;
  Alcotest.(check pass) "static outputs always driven" () ()

let test_unit_drive_sizing () =
  (* Static networks are sized for unit worst-case resistance. *)
  List.iter
    (fun e ->
      let c = elaborate Tg_static e.Catalog.spec in
      (match c.pull_up with
      | Some pu ->
          Alcotest.(check (float 1e-9)) "pu resistance" 1.0 (resistance pu)
      | None -> Alcotest.fail "static cell without PU");
      Alcotest.(check (float 1e-9)) "pd resistance" 1.0
        (resistance c.pull_down))
    Catalog.all

let test_pseudo_ratio () =
  List.iter
    (fun e ->
      let c = elaborate Tg_pseudo e.Catalog.spec in
      Alcotest.(check (float 1e-9)) "pd conductance 4/3" (3.0 /. 4.0)
        (resistance c.pull_down);
      Alcotest.(check (float 1e-9)) "bias width" (1.0 /. 3.0) c.bias_width)
    Catalog.all

(* ---- Table 2 reproduction ---- *)

let pick fam (r : Paper_data.table2_row) =
  match fam with
  | Tg_static -> Some r.Paper_data.tg_static
  | Tg_pseudo -> Some r.Paper_data.tg_pseudo
  | Pass_pseudo -> Some r.Paper_data.pass_pseudo
  | Cmos -> r.Paper_data.cmos
  | Pass_static -> None

let close ?(tol = 0.11) got want = abs_float (got -. want) <= tol *. want

let count_matching fam =
  let rows = Charlib.characterize_catalog fam in
  List.fold_left
    (fun (n, total) (r : Charlib.row) ->
      match pick fam (Paper_data.table2_find r.Charlib.name) with
      | None -> (n, total)
      | Some p ->
          let ok =
            close r.Charlib.area p.Paper_data.a
            && close r.Charlib.fo4_avg p.Paper_data.avg
          in
          ((if ok then n + 1 else n), total + 1))
    (0, 0) rows

let test_table2_static_exact_areas () =
  (* Transmission-gate static: transistor counts and areas must match the
     published Table 2 exactly (0.05 rounding slack on areas). *)
  List.iter
    (fun (r : Charlib.row) ->
      let p = (Paper_data.table2_find r.Charlib.name).Paper_data.tg_static in
      if not (List.mem r.Charlib.name [ "F34"; "F44"; "F45" ]) then begin
        (* Rows the paper itself lists inconsistently: F34 shows T=14/A=12.7
           while its topological twin F35 shows T=12/A=14.7, and the
           F44/F45 areas are swapped relative to their De Morgan duals
           F43/F42 (we compute F44=14.7, F45=16; the paper prints the
           reverse). *)
        Alcotest.(check int) (r.Charlib.name ^ " T") p.Paper_data.t
          r.Charlib.transistors;
        if abs_float (r.Charlib.area -. p.Paper_data.a) > 0.051 then
          Alcotest.failf "%s area %.2f vs %.2f" r.Charlib.name r.Charlib.area
            p.Paper_data.a
      end)
    (Charlib.characterize_catalog Tg_static);
  Alcotest.(check pass) "static areas match Table 2" () ()

let test_table2_family_coverage () =
  (* Across every family, the characterization should agree with the
     published numbers for the bulk of the cells (the paper has a few
     internally inconsistent entries; Fig. 5 labels agree with us). *)
  List.iter
    (fun (fam, minimum) ->
      let n, total = count_matching fam in
      if n < minimum then
        Alcotest.failf "%s: only %d/%d rows within 11%%" (family_name fam) n
          total)
    [ (Tg_static, 42); (Tg_pseudo, 36); (Pass_pseudo, 38); (Cmos, 6) ];
  Alcotest.(check pass) "per-family coverage" () ()

let test_table2_averages () =
  (* The averages of Table 2's last data row. *)
  let t, a, w, v = Charlib.averages (Charlib.characterize_catalog Tg_static) in
  Alcotest.(check bool) "static avg T" true (close ~tol:0.02 t 9.1);
  Alcotest.(check bool) "static avg A" true (close ~tol:0.02 a 12.3);
  Alcotest.(check bool) "static avg w" true (close ~tol:0.05 w 11.3);
  Alcotest.(check bool) "static avg a" true (close ~tol:0.05 v 9.0);
  let _, a2, _, v2 = Charlib.averages (Charlib.characterize_catalog Tg_pseudo) in
  Alcotest.(check bool) "pseudo 31% smaller" true
    (close ~tol:0.08 (a2 /. a) (8.5 /. 12.3));
  Alcotest.(check bool) "pseudo 33% slower" true
    (close ~tol:0.10 (v2 /. v) (12.0 /. 9.0));
  let _, a3, _, v3 =
    Charlib.averages (Charlib.characterize_catalog Pass_pseudo)
  in
  Alcotest.(check bool) "pass pseudo slower than tg pseudo" true (v3 > v2);
  Alcotest.(check bool) "pass pseudo barely smaller than static" true
    (a3 < a && a3 > a2)

let test_expressive_power () =
  (* Headline of Sec. 3.1: 46 CNTFET gates vs 7 CMOS gates with the same
     topology constraints. *)
  Alcotest.(check int) "46 vs 7" 7 (List.length Catalog.cmos_subset);
  Alcotest.(check int) "46 total" 46 (List.length Catalog.all)

let test_xor_cheaper_than_cmos () =
  (* An XOR2 in the CNTFET static family is smaller than a CMOS-mapped
     XOR (which needs at least NAND2 x4 = 32 area units). *)
  let r = Charlib.characterize Tg_static (Catalog.find "F01") in
  Alcotest.(check bool) "xor area tiny" true (r.Charlib.area < 3.0);
  Alcotest.(check bool) "xor beats inverter FO4" true
    (r.Charlib.fo4_worst < 5.0)

let () =
  Alcotest.run "gates"
    [
      ( "catalog",
        [
          Alcotest.test_case "size and names" `Quick test_catalog_size;
          Alcotest.test_case "cmos subset" `Quick test_cmos_subset;
          Alcotest.test_case "distinct" `Quick test_distinct_functions;
          Alcotest.test_case "supports" `Quick test_distinct_npn_46;
          Alcotest.test_case "series depth" `Quick test_max_stack_bound;
          Alcotest.test_case "complement form" `Quick test_complement_form;
          Alcotest.test_case "expressive power" `Quick test_expressive_power;
        ] );
      ( "cells",
        [
          Alcotest.test_case "functionality" `Quick test_all_cells_function;
          Alcotest.test_case "full swing" `Quick test_full_swing;
          Alcotest.test_case "pass degradation" `Quick test_pass_network_degrades;
          Alcotest.test_case "driven outputs" `Quick test_no_contention_no_float;
          Alcotest.test_case "unit drive" `Quick test_unit_drive_sizing;
          Alcotest.test_case "pseudo ratio" `Quick test_pseudo_ratio;
        ] );
      ( "table2",
        [
          Alcotest.test_case "static T/A exact" `Quick test_table2_static_exact_areas;
          Alcotest.test_case "family coverage" `Quick test_table2_family_coverage;
          Alcotest.test_case "averages" `Quick test_table2_averages;
          Alcotest.test_case "xor advantage" `Quick test_xor_cheaper_than_cmos;
        ] );
    ]
