lib/ttab/npn.ml: Array Hashtbl Int64
