lib/ttab/tt.mli: Format
