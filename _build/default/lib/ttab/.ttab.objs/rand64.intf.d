lib/ttab/rand64.mli:
