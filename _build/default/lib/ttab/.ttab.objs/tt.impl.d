lib/ttab/tt.ml: Array Buffer Format Int64 List Printf Stdlib String
