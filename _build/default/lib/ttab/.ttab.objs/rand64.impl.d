lib/ttab/rand64.ml: Int64
