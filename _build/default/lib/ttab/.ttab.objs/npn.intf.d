lib/ttab/npn.mli:
