(** Truth tables over [n] variables, 0 <= n <= 16.

    A table is a bit vector of length [2^n] stored in 64-bit words.  For
    [n <= 6] the single word holds the function replicated periodically to
    fill all 64 bits (the usual convention in logic-synthesis packages),
    which lets word-wise operations ignore [n].

    Variable [i] has period [2^(i+1)]: bit [k] of the table is the value of
    the function on the assignment whose variable [i] equals bit [i] of
    [k]. *)

type t

val max_vars : int
(** Largest supported variable count (16). *)

val nvars : t -> int
val words : t -> int64 array

(** {1 Construction} *)

val const0 : int -> t
(** [const0 n] is the constant-false function of [n] variables. *)

val const1 : int -> t

val var : int -> int -> t
(** [var n i] is the projection on variable [i] ([0 <= i < n]). *)

val of_words : int -> int64 array -> t
(** [of_words n w] builds a table from raw words; for [n <= 6] the single
    word must already be replicated (use {!of_bits} otherwise). *)

val of_bits : int -> int64 -> t
(** [of_bits n b] builds an [n <= 6]-variable table from the low [2^n] bits
    of [b], replicating them across the word. *)

val of_fun : int -> (int -> bool) -> t
(** [of_fun n f] tabulates [f] over all [2^n] assignments; the argument is
    the assignment encoded as an integer (bit [i] = variable [i]). *)

(** {1 Boolean connectives} *)

val bnot : t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val bandn : t -> t -> t
(** [bandn a b] is [a AND (NOT b)]. *)

val mux : t -> t -> t -> t
(** [mux s a b] is [if s then a else b] pointwise. *)

(** {1 Queries} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val is_const0 : t -> bool
val is_const1 : t -> bool
val eval : t -> int -> bool
(** [eval t a] is the value of [t] on assignment [a] (bit [i] = var [i]). *)

val count_ones : t -> int
(** Number of satisfying assignments (on the [2^n] real bits). *)

val depends_on : t -> int -> bool
val support : t -> int list
(** Variables the function actually depends on, ascending. *)

val support_size : t -> int

(** {1 Cofactors and quantification} *)

val cofactor0 : t -> int -> t
val cofactor1 : t -> int -> t
val exists : t -> int -> bool
(* [exists] as a table: *)
val exists_tt : t -> int -> t
val forall_tt : t -> int -> t

(** {1 Variable manipulation} *)

val flip : t -> int -> t
(** [flip t i] substitutes [NOT x_i] for [x_i]. *)

val swap_adjacent : t -> int -> t
(** [swap_adjacent t i] exchanges variables [i] and [i+1]. *)

val swap : t -> int -> int -> t
val permute : t -> int array -> t
(** [permute t p]: variable [i] of the result reads variable [p.(i)] of [t]…
    precisely, [eval (permute t p) a = eval t b] where bit [p.(i)] of [b] is
    bit [i] of [a].  [p] must be a permutation of [0..n-1]. *)

val shrink_to_support : t -> t * int array
(** Re-expresses the function over its support only.  Returns the smaller
    table and the array mapping new variable index to old variable index. *)

val extend : t -> int -> t
(** [extend t n] views [t] as a function of [n >= nvars t] variables (the
    new variables are vacuous). *)

(** {1 Printing} *)

val to_hex : t -> string
val pp : Format.formatter -> t -> unit
