(** Deterministic 64-bit pseudo-random stream (SplitMix64).

    Used for simulation patterns and property-based inputs so that runs are
    reproducible without threading OCaml's global [Random] state. *)

type t

val create : int64 -> t
val next : t -> int64
val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound-1] ([bound > 0]). *)

val bool : t -> bool
