type gate_char = { t : int; a : float; w : float; avg : float }

type table2_row = {
  gate : string;
  tg_static : gate_char;
  tg_pseudo : gate_char;
  pass_pseudo : gate_char;
  cmos : gate_char option;
}

let gc t a w avg = { t; a; w; avg }

(* Table 2 of the paper, transcribed row by row:
   per gate, (T, A, FO4 worst, FO4 avg) for the transmission-gate static,
   transmission-gate pseudo, and pass-transistor pseudo CNTFET families,
   plus static CMOS where the topology exists. *)
let table2 =
  let row gate s p pp cm =
    { gate; tg_static = s; tg_pseudo = p; pass_pseudo = pp; cmos = cm }
  in
  [
    row "F00" (gc 2 2.0 5.0 5.0) (gc 2 1.7 7.0 7.0) (gc 2 1.7 7.0 7.0)
      (Some (gc 2 2.0 5.0 5.0));
    row "F01" (gc 4 2.7 4.0 4.0) (gc 3 2.1 5.7 5.7) (gc 2 3.0 13.7 13.7) None;
    row "F02" (gc 4 6.0 8.0 8.0) (gc 3 3.0 8.3 8.3) (gc 3 3.0 8.3 8.3)
      (Some (gc 4 10.0 8.7 8.7));
    row "F03" (gc 4 6.0 8.0 8.0) (gc 3 5.7 13.7 13.7) (gc 3 5.7 13.7 13.7)
      (Some (gc 4 8.0 7.3 7.3));
    row "F04" (gc 6 7.0 8.2 6.6) (gc 5 3.4 8.8 7.4) (gc 3 4.3 15.0 13.2) None;
    row "F05" (gc 6 7.0 8.2 6.6) (gc 5 6.6 13.7 10.8) (gc 3 13.7 27.0 23.4) None;
    row "F06" (gc 8 8.0 10.7 8.0) (gc 5 3.9 11.0 8.6) (gc 3 5.7 27.0 19.9) None;
    row "F07" (gc 8 8.0 10.7 8.0) (gc 5 7.4 18.1 13.4) (gc 3 11.0 48.3 34.1) None;
    row "F08" (gc 8 8.0 6.7 6.7) (gc 5 3.9 7.4 7.4) (gc 3 5.7 16.3 16.3) None;
    row "F09" (gc 8 8.0 6.7 6.7) (gc 5 7.4 11.0 11.0) (gc 3 11.0 27.0 27.0) None;
    row "F10" (gc 6 12.0 11.0 11.0) (gc 4 4.3 9.7 9.7) (gc 4 4.3 9.7 9.7)
      (Some (gc 6 21.0 12.3 12.3));
    row "F11" (gc 6 11.0 10.5 9.8) (gc 4 8.3 13.7 13.7) (gc 4 8.3 13.7 13.7)
      (Some (gc 6 16.0 10.7 9.8));
    row "F12" (gc 6 11.0 10.5 9.8) (gc 4 7.0 15.0 13.2) (gc 4 7.0 15.0 13.2)
      (Some (gc 6 17.0 10.3 9.9));
    row "F13" (gc 6 12.0 11.0 11.0) (gc 4 12.3 20.3 20.3) (gc 4 12.3 20.3 20.3)
      (Some (gc 6 15.0 9.7 9.7));
    row "F14" (gc 8 13.3 11.2 9.4) (gc 5 4.8 10.1 8.9) (gc 4 5.7 16.3 13.7) None;
    row "F15" (gc 10 14.7 11.3 10.6) (gc 6 5.2 12.3 10.1) (gc 4 7.0 28.3 19.0) None;
    row "F16" (gc 12 16.0 20.0 12.0) (gc 7 5.7 16.3 11.0) (gc 4 8.3 40.3 24.3) None;
    row "F17" (gc 8 12.3 10.5 8.4) (gc 5 9.2 13.7 11.3) (gc 4 11.0 24.3 20.8) None;
    row "F18" (gc 10 13.7 13.5 9.8) (gc 6 10.1 17.2 12.7) (gc 4 13.7 45.7 28.9) None;
    row "F19" (gc 10 13.3 12.3 10.1) (gc 6 10.1 18.1 13.5) (gc 4 13.7 48.3 31.6) None;
    row "F20" (gc 12 14.7 18.0 10.7) (gc 7 11.0 25.2 14.6) (gc 4 16.3 69.7 37.7) None;
    row "F21" (gc 8 12.0 11.0 8.3) (gc 5 9.2 14.6 12.2) (gc 4 11.0 27.0 23.4) None;
    row "F22" (gc 8 12.0 11.0 8.3) (gc 5 7.4 15.4 10.7) (gc 4 8.3 16.3 16.3) None;
    row "F23" (gc 8 12.3 10.5 8.4) (gc 5 7.9 13.7 10.4) (gc 4 9.7 25.7 19.0) None;
    row "F24" (gc 10 13.3 12.3 9.5) (gc 6 7.0 15.4 12.4) (gc 4 11.0 37.7 24.3) None;
    row "F25" (gc 10 13.7 13.5 9.8) (gc 6 8.8 26.6 14.1) (gc 4 12.3 49.7 29.7) None;
    row "F26" (gc 12 14.7 18.0 10.7) (gc 7 9.2 23.4 14.6) (gc 4 7.0 31.0 17.7) None;
    row "F27" (gc 8 13.3 11.2 9.4) (gc 5 13.7 20.3 16.8) (gc 4 16.3 36.3 28.3) None;
    row "F28" (gc 10 14.7 14.0 10.6) (gc 6 15.0 20.3 10.7) (gc 4 20.3 68.3 40.3) None;
    row "F29" (gc 12 16.0 20.0 12.0) (gc 7 16.3 37.7 21.7) (gc 4 24.3 104.3 56.3) None;
    row "F30" (gc 10 14.7 11.3 11.0) (gc 6 5.2 14.1 12.5) (gc 4 7.0 17.7 16.6) None;
    row "F31" (gc 12 16.0 14.7 10.4) (gc 7 5.7 12.8 9.3) (gc 4 8.3 29.7 21.1) None;
    row "F32" (gc 10 13.7 8.8 8.2) (gc 6 10.1 13.7 10.5) (gc 4 13.7 24.3 23.2) None;
    row "F33" (gc 10 13.3 11.0 8.0) (gc 6 10.1 14.6 11.4) (gc 4 13.7 27.0 25.8) None;
    row "F34" (gc 14 12.7 14.0 9.2) (gc 7 11.0 18.1 12.4) (gc 4 16.3 48.0 31.3) None;
    row "F35" (gc 12 14.7 14.0 9.2) (gc 7 11.0 18.1 12.4) (gc 4 16.3 48.3 31.3) None;
    row "F36" (gc 10 13.3 11.0 8.0) (gc 6 8.3 15.4 10.7) (gc 4 11.0 27.0 20.6) None;
    row "F37" (gc 10 13.7 10.8 8.5) (gc 6 10.1 13.7 10.5) (gc 4 13.7 24.3 13.2) None;
    row "F38" (gc 12 14.7 14.0 9.2) (gc 7 9.2 19.9 12.8) (gc 4 13.7 51.0 29.7) None;
    row "F39" (gc 12 14.7 12.7 9.2) (gc 7 9.2 16.3 12.8) (gc 4 13.7 40.3 29.7) None;
    row "F40" (gc 10 14.7 11.3 9.0) (gc 6 15.0 20.3 15.6) (gc 4 20.3 36.3 33.1) None;
    row "F41" (gc 12 16.0 14.7 10.4) (gc 7 16.3 27.0 18.5) (gc 4 24.3 72.3 46.7) None;
    row "F42" (gc 12 16.0 9.3 9.3) (gc 7 5.7 9.2 9.2) (gc 4 8.3 19.0 19.0) None;
    row "F43" (gc 12 14.7 8.7 8.2) (gc 7 9.2 12.8 11.6) (gc 4 13.7 29.7 26.1) None;
    row "F44" (gc 12 16.0 9.3 9.3) (gc 7 16.3 16.3 16.3) (gc 4 24.3 40.3 40.3) None;
    row "F45" (gc 12 14.7 8.7 9.2) (gc 7 11.0 11.0 11.0) (gc 4 16.3 32.5 24.1) None;
  ]

let table2_find gate = List.find (fun r -> r.gate = gate) table2

let tau1_ps = 0.59
let tau2_ps = 3.00

type mapping_result = {
  gates : int;
  area : float;
  levels : int;
  norm_delay : float;
  abs_delay_ps : float;
}

type table3_row = {
  bench : string;
  inputs : int;
  outputs : int;
  description : string;
  static : mapping_result;
  pseudo : mapping_result;
  cmos_map : mapping_result;
}

let mr gates area levels norm_delay abs_delay_ps =
  { gates; area; levels; norm_delay; abs_delay_ps }

(* Table 3 of the paper. *)
let table3 =
  let row bench inputs outputs description static pseudo cmos_map =
    { bench; inputs; outputs; description; static; pseudo; cmos_map }
  in
  [
    row "C2670" 233 140 "ALU and control"
      (mr 416 3292.5 12 105.2 62.1) (mr 467 1883.9 11 125.3 73.9)
      (mr 674 5687.0 16 120.0 360.0);
    row "C1908" 33 25 "Error correcting"
      (mr 201 1562.2 12 106.5 62.8) (mr 207 893.6 13 120.2 70.9)
      (mr 502 4641.0 22 175.0 525.0);
    row "C3540" 50 22 "ALU and control"
      (mr 642 6228.7 19 180.7 106.7) (mr 664 3475.4 19 197.6 116.6)
      (mr 956 8823.0 29 218.2 654.0);
    row "dalu" 75 16 "Dedicated ALU"
      (mr 679 6662.3 16 163.6 96.5) (mr 713 3956.8 17 193.5 114.2)
      (mr 1100 9181.0 28 205.9 617.7);
    row "C7552" 207 108 "ALU and control"
      (mr 904 6747.6 17 149.1 88.0) (mr 987 4235.7 17 174.4 102.9)
      (mr 1860 13933.0 24 173.6 520.8);
    row "C6288" 32 32 "Multiplier"
      (mr 1389 11672.9 48 397.8 234.7) (mr 1322 6558.0 48 481.6 284.1)
      (mr 2767 23192.0 89 639.8 1919.4);
    row "C5315" 178 123 "ALU and selector"
      (mr 894 7600.6 16 145.6 85.9) (mr 986 4553.2 17 172.2 101.6)
      (mr 1465 12048.0 27 200.2 600.6);
    row "des" 256 245 "Data encryption"
      (mr 2583 25781.1 10 88.1 52.0) (mr 2500 13920.0 9 90.8 53.6)
      (mr 3560 35781.0 15 115.3 345.9);
    row "i10" 257 224 "Logic"
      (mr 1279 11264.2 19 200.0 118.0) (mr 1287 6296.2 21 222.3 131.2)
      (mr 1965 16394.0 29 218.8 656.4);
    row "t481" 16 1 "Logic"
      (mr 670 6379.0 12 113.7 67.1) (mr 598 3516.0 11 114.0 67.3)
      (mr 804 8259.0 13 102.2 306.6);
    row "i18" 133 81 "Logic"
      (mr 674 6642.0 8 83.6 49.3) (mr 714 3698.6 9 89.8 53.0)
      (mr 836 7968.0 11 82.1 246.3);
    row "C1355" 41 32 "Error correcting"
      (mr 207 1260.2 9 63.9 37.7) (mr 215 776.6 9 73.6 43.4)
      (mr 579 5376.0 16 125.0 375.0);
    row "add-16" 33 17 "16-bit adder"
      (mr 128 834.4 19 179.2 105.7) (mr 132 540.0 20 220.0 129.8)
      (mr 217 1548.0 33 244.6 733.8);
    row "add-32" 65 33 "32-bit adder"
      (mr 256 1656.7 35 340.5 200.9) (mr 260 1091.4 36 421.6 248.7)
      (mr 441 3084.0 65 479.1 1437.3);
    row "add-64" 129 65 "64-bit adder"
      (mr 512 3321.0 67 663.1 391.2) (mr 516 2194.1 68 824.8 486.6)
      (mr 889 6156.0 129 948.3 2844.9);
  ]

let table3_find bench = List.find (fun r -> r.bench = bench) table3

let fig6_speedups =
  List.map
    (fun r ->
      ( r.bench,
        r.cmos_map.abs_delay_ps /. r.static.abs_delay_ps,
        r.cmos_map.abs_delay_ps /. r.pseudo.abs_delay_ps ))
    table3

let headline = function
  | "gate_reduction" -> 0.386
  | "area_reduction_static" -> 0.377
  | "area_reduction_pseudo" -> 0.645
  | "speedup_static" -> 6.9
  | "speedup_pseudo" -> 5.8
  | "level_reduction_static" -> 0.415
  | "level_reduction_pseudo" -> 0.404
  | "cntfet_tau_advantage" -> 5.1
  | key -> invalid_arg ("Paper_data.headline: unknown key " ^ key)
