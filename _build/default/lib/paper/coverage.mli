(** Expressive-power analysis of technology libraries.

    The paper's headline comparison — 46 implementable functions versus 7
    for CMOS under the same topology constraint — is a statement about the
    raw catalogs.  This module quantifies the downstream consequence: how
    many Boolean functions of exactly [k] support variables a library can
    realize with a {e single} cell, with and without charging input/output
    inverters.  Exhaustive for [k <= 4] (65536 functions). *)

type report = {
  k : int;
  total : int;           (** functions with support of exactly [k] *)
  covered_free : int;    (** single cell, no inverter needed *)
  covered_any : int;     (** single cell allowing inverted pins/output *)
  npn_classes_total : int;
  npn_classes_covered : int;  (** classes with a free single-cell match *)
}

val analyze : Cell_lib.t -> int -> report
(** [analyze lib k] for [1 <= k <= 4]. *)

val render : Cell_lib.t list -> int list -> string
(** Markdown comparison over libraries and support sizes. *)
