lib/paper/coverage.mli: Cell_lib
