lib/paper/coverage.ml: Buffer Cell_lib Hashtbl Int64 List Npn Printf Tt
