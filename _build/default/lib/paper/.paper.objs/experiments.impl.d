lib/paper/experiments.ml: Aig Array Bench_suite Buffer Catalog Cell_lib Cell_netlist Charlib Format Gate_spec Int64 List Mapped Mapper Option Paper_data Printf Rand64 Synth
