lib/paper/paper_data.ml: List
