lib/paper/paper_data.mli:
