lib/paper/experiments.mli: Bench_suite Cell_lib Cell_netlist Charlib Mapped Paper_data
