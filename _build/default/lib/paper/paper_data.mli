(** The numbers published in the paper (Tables 2 and 3, Figure 6), used by
    the experiment drivers to report computed-vs-published deviations.

    Sources: Ben Jamaa, Mohanram, De Micheli, "Novel Library of Logic Gates
    with Ambipolar CNTFETs: Opportunities for Multi-Level Logic Synthesis",
    DATE 2009. *)

type gate_char = {
  t : int;        (** transistor count *)
  a : float;      (** normalized area *)
  w : float;      (** worst-case FO4 / tau *)
  avg : float;    (** average FO4 / tau *)
}

type table2_row = {
  gate : string;  (** "F00".."F45" *)
  tg_static : gate_char;
  tg_pseudo : gate_char;
  pass_pseudo : gate_char;
  cmos : gate_char option;  (** only the 7 CMOS-expressible entries *)
}

val table2 : table2_row list
val table2_find : string -> table2_row

val tau1_ps : float
(** CNTFET intrinsic delay, 0.59 ps. *)

val tau2_ps : float
(** CMOS intrinsic delay, 3.00 ps. *)

type mapping_result = {
  gates : int;
  area : float;
  levels : int;
  norm_delay : float;
  abs_delay_ps : float;
}

type table3_row = {
  bench : string;
  inputs : int;
  outputs : int;
  description : string;
  static : mapping_result;
  pseudo : mapping_result;
  cmos_map : mapping_result;
}

val table3 : table3_row list
val table3_find : string -> table3_row

val fig6_speedups : (string * float * float) list
(** Per benchmark: CMOS-to-CNTFET absolute-delay ratio for the static and
    pseudo transmission-gate families (the two bar series of Figure 6),
    derived from Table 3's absolute delays. *)

val headline : string -> float
(** Headline claims by key: "gate_reduction" (~0.38), "area_reduction_static"
    (0.377), "area_reduction_pseudo" (0.645), "speedup_static" (6.9),
    "speedup_pseudo" (5.8), "level_reduction_static" (0.415),
    "level_reduction_pseudo" (0.404), "cntfet_tau_advantage" (5.1). *)
