

type t =
  | Const of bool
  | Lit of int * bool
  | And of t list
  | Or of t list

let of_cube c =
  match Cube.literals c with
  | [] -> Const true
  | [ (i, s) ] -> Lit (i, s)
  | lits -> And (List.map (fun (i, s) -> Lit (i, s)) lits)

(* Most frequent literal among cubes with >= 2 occurrences, if any. *)
let best_literal cubes =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun lit ->
          let n = try Hashtbl.find counts lit with Not_found -> 0 in
          Hashtbl.replace counts lit (n + 1))
        (Cube.literals c))
    cubes;
  Hashtbl.fold
    (fun lit n best ->
      match best with
      | Some (_, m) when m >= n -> best
      | _ when n >= 2 -> Some (lit, n)
      | _ -> best)
    counts None

let rec factor_cubes cubes =
  match cubes with
  | [] -> Const false
  | [ c ] -> of_cube c
  | _ -> (
      match best_literal cubes with
      | None -> Or (List.map of_cube cubes)
      | Some (((i, sign) as _lit), _) ->
          let with_l, without =
            List.partition
              (fun c -> if sign then Cube.has_pos c i else Cube.has_neg c i)
              cubes
          in
          let quotient = List.map (fun c -> Cube.remove_var c i) with_l in
          let lhs =
            match factor_cubes quotient with
            | Const true -> Lit (i, sign)
            | And fs -> And (Lit (i, sign) :: fs)
            | f -> And [ Lit (i, sign); f ]
          in
          if without = [] then lhs
          else
            match factor_cubes without with
            | Or fs -> Or (lhs :: fs)
            | f -> Or [ lhs; f ])

let factor (s : Sop.t) = factor_cubes s.Sop.cubes

let rec num_literals = function
  | Const _ -> 0
  | Lit _ -> 1
  | And fs | Or fs -> List.fold_left (fun a f -> a + num_literals f) 0 fs

let rec num_and2 = function
  | Const _ | Lit _ -> 0
  | And fs | Or fs ->
      List.length fs - 1
      + List.fold_left (fun a f -> a + num_and2 f) 0 fs

let rec to_tt n = function
  | Const b -> if b then Tt.const1 n else Tt.const0 n
  | Lit (i, s) -> if s then Tt.var n i else Tt.bnot (Tt.var n i)
  | And fs ->
      List.fold_left (fun acc f -> Tt.band acc (to_tt n f)) (Tt.const1 n) fs
  | Or fs ->
      List.fold_left (fun acc f -> Tt.bor acc (to_tt n f)) (Tt.const0 n) fs

let rec pp fmt = function
  | Const b -> Format.fprintf fmt "%d" (if b then 1 else 0)
  | Lit (i, s) -> Format.fprintf fmt "%sx%d" (if s then "" else "!") i
  | And fs ->
      Format.fprintf fmt "(";
      List.iteri
        (fun k f ->
          if k > 0 then Format.fprintf fmt " * ";
          pp fmt f)
        fs;
      Format.fprintf fmt ")"
  | Or fs ->
      Format.fprintf fmt "(";
      List.iteri
        (fun k f ->
          if k > 0 then Format.fprintf fmt " + ";
          pp fmt f)
        fs;
      Format.fprintf fmt ")"
