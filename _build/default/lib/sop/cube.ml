type t = { pos : int; neg : int }

let top = { pos = 0; neg = 0 }

let of_literals lits =
  List.fold_left
    (fun c (i, sign) ->
      let bit = 1 lsl i in
      if sign then begin
        if c.neg land bit <> 0 then invalid_arg "Cube.of_literals: contradiction";
        { c with pos = c.pos lor bit }
      end else begin
        if c.pos land bit <> 0 then invalid_arg "Cube.of_literals: contradiction";
        { c with neg = c.neg lor bit }
      end)
    top lits

let literals c =
  let rec go i acc =
    if 1 lsl i > c.pos lor c.neg then List.rev acc
    else
      let bit = 1 lsl i in
      let acc =
        if c.pos land bit <> 0 then (i, true) :: acc
        else if c.neg land bit <> 0 then (i, false) :: acc
        else acc
      in
      go (i + 1) acc
  in
  go 0 []

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let num_literals c = popcount c.pos + popcount c.neg
let has_pos c i = c.pos land (1 lsl i) <> 0
let has_neg c i = c.neg land (1 lsl i) <> 0
let mem_var c i = has_pos c i || has_neg c i

let and_lit c i sign =
  let bit = 1 lsl i in
  if sign then
    if c.neg land bit <> 0 then None else Some { c with pos = c.pos lor bit }
  else if c.pos land bit <> 0 then None
  else Some { c with neg = c.neg lor bit }

let remove_var c i =
  let bit = lnot (1 lsl i) in
  { pos = c.pos land bit; neg = c.neg land bit }

let contains a b = a.pos land b.pos = a.pos && a.neg land b.neg = a.neg

let evaluates c a = a land c.pos = c.pos && lnot a land c.neg = c.neg

let to_tt n c =
  
  List.fold_left
    (fun acc (i, sign) ->
      let v = Tt.var n i in
      Tt.band acc (if sign then v else Tt.bnot v))
    (Tt.const1 n) (literals c)

let compare a b = Stdlib.compare (a.pos, a.neg) (b.pos, b.neg)

let pp fmt c =
  if c = top then Format.fprintf fmt "1"
  else
    List.iteri
      (fun k (i, sign) ->
        if k > 0 then Format.fprintf fmt "*";
        Format.fprintf fmt "%sx%d" (if sign then "" else "!") i)
      (literals c)
