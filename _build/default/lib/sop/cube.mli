(** Cubes (products of literals) over up to {!Tt.max_vars} variables.

    A cube is a pair of bit masks: [pos] for positive literals and [neg] for
    negative literals.  The empty cube (both masks zero) is the constant-true
    product. *)

type t = { pos : int; neg : int }

val top : t
(** The universal cube (no literals, constant true). *)

val of_literals : (int * bool) list -> t
(** [(i, true)] is the positive literal [x_i]; [(i, false)] is [NOT x_i].
    Contradictory literal pairs are rejected. *)

val literals : t -> (int * bool) list
(** Ascending by variable. *)

val num_literals : t -> int
val has_pos : t -> int -> bool
val has_neg : t -> int -> bool
val mem_var : t -> int -> bool

val and_lit : t -> int -> bool -> t option
(** Add a literal; [None] if the result would be contradictory. *)

val remove_var : t -> int -> t
val contains : t -> t -> bool
(** [contains a b]: every minterm of [b] is a minterm of [a] (i.e. [a]'s
    literal set is a subset of [b]'s). *)

val evaluates : t -> int -> bool
(** [evaluates c a]: assignment [a] (bit [i] = variable [i]) lies in [c]. *)

val to_tt : int -> t -> Tt.t
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
