lib/sop/factored.mli: Cube Format Sop Tt
