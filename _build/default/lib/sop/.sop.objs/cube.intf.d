lib/sop/cube.mli: Format Tt
