lib/sop/factored.ml: Cube Format Hashtbl List Sop Tt
