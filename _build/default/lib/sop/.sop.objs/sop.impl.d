lib/sop/sop.ml: Cube Format List Tt
