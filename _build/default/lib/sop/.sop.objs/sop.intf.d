lib/sop/sop.mli: Cube Format Tt
