(** Sum-of-products covers and the Minato–Morreale irredundant SOP. *)

type t = { n : int; cubes : Cube.t list }

val const0 : int -> t
val const1 : int -> t
val make : int -> Cube.t list -> t
val num_cubes : t -> int
val num_literals : t -> int
val to_tt : t -> Tt.t

val isop : Tt.t -> t
(** Irredundant sum-of-products of a completely-specified function. *)

val isop_lu : Tt.t -> Tt.t -> t
(** [isop_lu lower upper] computes an irredundant cover [f] with
    [lower <= f <= upper] (an incompletely-specified function whose
    don't-care set is [upper AND NOT lower]). *)

val pp : Format.formatter -> t -> unit
