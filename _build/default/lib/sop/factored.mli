(** Factored Boolean forms (SIS-style quick factoring of SOP covers).

    A factored form is a tree of AND/OR operators over literals; its literal
    count is the classic estimate of multi-level implementation cost and
    drives the refactoring gain test in the synthesis passes. *)

type t =
  | Const of bool
  | Lit of int * bool  (** variable index, sign ([true] = positive) *)
  | And of t list
  | Or of t list

val of_cube : Cube.t -> t

val factor : Sop.t -> t
(** Quick algebraic factoring: repeatedly divides by the most frequent
    literal.  The result is logically equal to the cover. *)

val num_literals : t -> int

val num_and2 : t -> int
(** Number of two-input AND/OR gates needed by a naive tree decomposition
    (an upper bound on fresh AIG nodes before structural hashing). *)

val to_tt : int -> t -> Tt.t
val pp : Format.formatter -> t -> unit
