type node = int

type man = {
  nvars : int;
  mutable var_of : int array;   (* node -> splitting variable *)
  mutable low : int array;      (* node -> else child *)
  mutable high : int array;     (* node -> then child *)
  mutable count : int;
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
}

let zero = 0
let one = 1

let terminal_var = max_int

let create ?(size_hint = 1024) nvars =
  let m =
    {
      nvars;
      var_of = Array.make (max size_hint 2) terminal_var;
      low = Array.make (max size_hint 2) (-1);
      high = Array.make (max size_hint 2) (-1);
      count = 2;
      unique = Hashtbl.create size_hint;
      ite_cache = Hashtbl.create size_hint;
    }
  in
  m

let num_vars m = m.nvars
let num_nodes m = m.count - 2

let grow m =
  let n = Array.length m.var_of in
  let nv = Array.make (2 * n) terminal_var in
  let nl = Array.make (2 * n) (-1) in
  let nh = Array.make (2 * n) (-1) in
  Array.blit m.var_of 0 nv 0 n;
  Array.blit m.low 0 nl 0 n;
  Array.blit m.high 0 nh 0 n;
  m.var_of <- nv; m.low <- nl; m.high <- nh

let mk m v lo hi =
  if lo = hi then lo
  else begin
    let key = (v, lo, hi) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
        if m.count >= Array.length m.var_of then grow m;
        let id = m.count in
        m.count <- id + 1;
        m.var_of.(id) <- v;
        m.low.(id) <- lo;
        m.high.(id) <- hi;
        Hashtbl.add m.unique key id;
        id
  end

let var m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.var";
  mk m i zero one

let topvar m f = if f <= 1 then terminal_var else m.var_of.(f)

let cof m f v sign =
  if topvar m f <> v then f else if sign then m.high.(f) else m.low.(f)

let rec ite m f g h =
  if f = one then g
  else if f = zero then h
  else if g = h then g
  else if g = one && h = zero then f
  else begin
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
        let v = min (topvar m f) (min (topvar m g) (topvar m h)) in
        let r0 = ite m (cof m f v false) (cof m g v false) (cof m h v false) in
        let r1 = ite m (cof m f v true) (cof m g v true) (cof m h v true) in
        let r = mk m v r0 r1 in
        Hashtbl.add m.ite_cache key r;
        r
  end

let mnot m f = ite m f zero one
let mand m f g = ite m f g zero
let mor m f g = ite m f one g
let mxor m f g = ite m f (mnot m g) g

let cofactor m f i sign =
  let rec go f =
    if f <= 1 then f
    else
      let v = m.var_of.(f) in
      if v > i then f
      else if v = i then (if sign then m.high.(f) else m.low.(f))
      else mk m v (go m.low.(f)) (go m.high.(f))
  in
  go f

let exists m f i =
  mor m (cofactor m f i false) (cofactor m f i true)

let size m f =
  let seen = Hashtbl.create 64 in
  let rec go f =
    if f <= 1 || Hashtbl.mem seen f then 0
    else begin
      Hashtbl.add seen f ();
      1 + go m.low.(f) + go m.high.(f)
    end
  in
  go f

let eval m f assign =
  let rec go f =
    if f = zero then false
    else if f = one then true
    else if assign m.var_of.(f) then go m.high.(f)
    else go m.low.(f)
  in
  go f

let sat_count m f =
  let cache = Hashtbl.create 64 in
  (* fraction of assignments satisfying f *)
  let rec frac f =
    if f = zero then 0.0
    else if f = one then 1.0
    else
      match Hashtbl.find_opt cache f with
      | Some x -> x
      | None ->
          let x = 0.5 *. (frac m.low.(f) +. frac m.high.(f)) in
          Hashtbl.add cache f x;
          x
  in
  frac f *. (2.0 ** float_of_int m.nvars)

let any_sat m f =
  if f = zero then None
  else begin
    let rec go f acc =
      if f = one then List.rev acc
      else
        let v = m.var_of.(f) in
        if m.high.(f) <> zero then go m.high.(f) ((v, true) :: acc)
        else go m.low.(f) ((v, false) :: acc)
    in
    Some (go f [])
  end

let of_tt m tt =
  
  let n = Tt.nvars tt in
  if n > m.nvars then invalid_arg "Bdd.of_tt";
  (* Shannon expansion splitting on the lowest variable first (the root of
     our BDDs carries the smallest variable), memoized on the truth table. *)
  let cache = Hashtbl.create 64 in
  let rec go tt i =
    if Tt.is_const0 tt then zero
    else if Tt.is_const1 tt then one
    else begin
      match Hashtbl.find_opt cache (i, Tt.words tt) with
      | Some r -> r
      | None ->
          let r =
            if Tt.depends_on tt i then
              mk m i (go (Tt.cofactor0 tt i) (i + 1)) (go (Tt.cofactor1 tt i) (i + 1))
            else go tt (i + 1)
          in
          Hashtbl.add cache (i, Tt.words tt) r;
          r
    end
  in
  go tt 0

let to_tt m n f =
  
  Tt.of_fun n (fun a -> eval m f (fun i -> a land (1 lsl i) <> 0))
