(** Reduced ordered binary decision diagrams.

    A small, self-contained ROBDD package with a unique table and an
    ITE-based apply.  Used as an independent engine to crosscheck the truth
    table and AIG code, and for equivalence checks on mid-size functions.
    Node handles are only meaningful relative to their manager. *)

type man
(** A manager: unique table, computed table, node store. *)

type node = int
(** Node handle.  Canonical: two equivalent functions built in the same
    manager receive the same handle. *)

val create : ?size_hint:int -> int -> man
(** [create n] makes a manager over [n] variables with the natural order. *)

val num_vars : man -> int
val zero : node
val one : node
val var : man -> int -> node

val mnot : man -> node -> node
val mand : man -> node -> node -> node
val mor : man -> node -> node -> node
val mxor : man -> node -> node -> node
val ite : man -> node -> node -> node -> node
val cofactor : man -> node -> int -> bool -> node
val exists : man -> node -> int -> node

val size : man -> node -> int
(** Number of internal nodes reachable from the handle. *)

val num_nodes : man -> int
(** Total nodes allocated in the manager. *)

val eval : man -> node -> (int -> bool) -> bool
val sat_count : man -> node -> float
(** Number of satisfying assignments over all [num_vars] variables. *)

val any_sat : man -> node -> (int * bool) list option
(** A satisfying partial assignment, or [None] for [zero]. *)

val of_tt : man -> Tt.t -> node
val to_tt : man -> int -> node -> Tt.t
