(** Switch-level RC characterization of library cells (Sec. 4.1–4.3).

    The model the paper reports with:
    - every gate is sized to drive the current of a unit inverter
      ({!Cell_netlist} handles sizing);
    - the FO4 delay of input pin [s] is
      [R_path * (C_par + 4 * C_in(s)) / C_inv], where [C_par] is the
      parasitic capacitance on the output node (one drain per adjacent
      device), [C_in(s)] the capacitance the signal drives (gate and
      polarity-gate capacitances assumed equal), and [C_inv] the input
      capacitance of a unit inverter (2 for CNTFETs — equal n/p widths — and
      3 for CMOS);
    - the worst case maximizes over input signals and transitions, the
      average averages the per-variable worst over the gate's variables;
    - normalized delays convert to picoseconds with the technology constants
      τ1 = 0.59 ps (CNTFET) and τ2 = 3.00 ps (CMOS) from Deng et al. [1]. *)

type row = {
  name : string;
  family : Cell_netlist.family;
  spec : Gate_spec.expr;
  transistors : int;
  area : float;
  fo4_worst : float;
  fo4_avg : float;
}

val tau_ps : Cell_netlist.family -> float
(** Technology-dependent intrinsic delay of a fanout-1 inverter. *)

val inverter_cin : Cell_netlist.family -> float

val characterize : Cell_netlist.family -> Catalog.entry -> row

val characterize_catalog : Cell_netlist.family -> row list
(** Every catalog entry the family can implement (the full 46 for CNTFET
    families, the 7-entry subset for CMOS). *)

val input_cap : Cell_netlist.cell -> Cell_netlist.signal -> float
val output_parasitic : Cell_netlist.cell -> float

val averages : row list -> float * float * float * float
(** [(transistors, area, fo4_worst, fo4_avg)] averaged over the rows. *)

val with_output_inverter : row -> row
(** The paper appends an output inverter to every cell so both output
    polarities are available; this adds the inverter's transistors, area,
    and average FO4 contribution (Table 2, penultimate row). *)
