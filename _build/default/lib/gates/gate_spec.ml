type expr =
  | Lit of int * bool
  | Xor of int * int * bool
  | And of expr list
  | Or of expr list

let lit v = Lit (v, true)
let ( ^: ) a b = Xor (a, b, true)

let rec vars_acc acc = function
  | Lit (v, _) -> v :: acc
  | Xor (a, b, _) -> a :: b :: acc
  | And es | Or es -> List.fold_left vars_acc acc es

let vars e = List.sort_uniq compare (vars_acc [] e)

let arity e = match List.rev (vars e) with [] -> 0 | v :: _ -> v + 1

let rec num_xors = function
  | Lit _ -> 0
  | Xor _ -> 1
  | And es | Or es -> List.fold_left (fun a e -> a + num_xors e) 0 es

(* Series depth of the network implementing the expression: AND composes in
   series, OR in parallel.  (The dual network has the same value with the
   roles exchanged, and the maximum over both is symmetric for the
   catalog's shapes; we report the AND-series depth, which is what the
   paper's "3 in series" constraint bounds.) *)
let rec max_stack = function
  | Lit _ | Xor _ -> 1
  | And es -> List.fold_left (fun a e -> a + max_stack e) 0 es
  | Or es -> List.fold_left (fun a e -> max a (max_stack e)) 0 es

let rec eval e env =
  match e with
  | Lit (v, ph) -> env v = ph
  | Xor (a, b, ph) -> env a <> env b = ph
  | And es -> List.for_all (fun e -> eval e env) es
  | Or es -> List.exists (fun e -> eval e env) es

let to_tt n e =
  if n < arity e then invalid_arg "Gate_spec.to_tt";
  Tt.of_fun n (fun a -> eval e (fun v -> a land (1 lsl v) <> 0))

let tt6 e = (Tt.words (to_tt 6 e)).(0)

let rec complement_form = function
  | Lit (v, ph) -> Lit (v, not ph)
  | Xor (a, b, ph) -> Xor (a, b, not ph)
  | And es -> Or (List.map complement_form es)
  | Or es -> And (List.map complement_form es)

let var_name v =
  if v < 0 || v > 25 then invalid_arg "Gate_spec.var_name";
  String.make 1 (Char.chr (Char.code 'A' + v))

let rec pp fmt = function
  | Lit (v, ph) ->
      Format.fprintf fmt "%s%s" (if ph then "" else "!") (var_name v)
  | Xor (a, b, ph) ->
      Format.fprintf fmt "(%s %s %s)" (var_name a)
        (if ph then "^" else "~^")
        (var_name b)
  | And es ->
      Format.fprintf fmt "(";
      List.iteri
        (fun i e ->
          if i > 0 then Format.fprintf fmt " * ";
          pp fmt e)
        es;
      Format.fprintf fmt ")"
  | Or es ->
      Format.fprintf fmt "(";
      List.iteri
        (fun i e ->
          if i > 0 then Format.fprintf fmt " + ";
          pp fmt e)
        es;
      Format.fprintf fmt ")"
