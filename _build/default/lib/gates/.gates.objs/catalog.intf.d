lib/gates/catalog.mli: Gate_spec
