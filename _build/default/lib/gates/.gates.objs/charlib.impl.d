lib/gates/charlib.ml: Catalog Cell_netlist Gate_spec Hashtbl List
