lib/gates/cell_netlist.mli: Format Gate_spec
