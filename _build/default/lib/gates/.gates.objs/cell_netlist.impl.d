lib/gates/cell_netlist.ml: Format Gate_spec List
