lib/gates/gate_spec.mli: Format Tt
