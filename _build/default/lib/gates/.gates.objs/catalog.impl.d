lib/gates/catalog.ml: Array Gate_spec List Printf
