lib/gates/charlib.mli: Catalog Cell_netlist Gate_spec
