lib/gates/gate_spec.ml: Array Char Format List String Tt
