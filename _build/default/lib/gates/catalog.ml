open Gate_spec

type entry = { index : int; name : string; spec : Gate_spec.expr }

(* Variable conventions of Table 1: A=0, B=1, C=2, D=3, E=4, F=5. *)
let a = 0
and b = 1
and c = 2
and d = 3
and e = 4
and f = 5

let specs =
  [|
    (* F00 *) lit a;
    (* F01 *) a ^: b;
    (* F02 *) Or [ lit a; lit b ];
    (* F03 *) And [ lit a; lit b ];
    (* F04 *) Or [ a ^: b; lit c ];
    (* F05 *) And [ a ^: b; lit c ];
    (* F06 *) Or [ a ^: b; a ^: c ];
    (* F07 *) And [ a ^: b; a ^: c ];
    (* F08 *) Or [ a ^: b; c ^: d ];
    (* F09 *) And [ a ^: b; c ^: d ];
    (* F10 *) Or [ lit a; lit b; lit c ];
    (* F11 *) And [ Or [ lit a; lit b ]; lit c ];
    (* F12 *) Or [ lit a; And [ lit b; lit c ] ];
    (* F13 *) And [ lit a; lit b; lit c ];
    (* F14 *) Or [ a ^: d; lit b; lit c ];
    (* F15 *) Or [ a ^: d; b ^: d; lit c ];
    (* F16 *) Or [ a ^: d; b ^: d; c ^: d ];
    (* F17 *) And [ Or [ a ^: d; lit b ]; lit c ];
    (* F18 *) And [ Or [ a ^: d; b ^: d ]; lit c ];
    (* F19 *) And [ Or [ a ^: d; lit b ]; c ^: d ];
    (* F20 *) And [ Or [ a ^: d; b ^: d ]; c ^: d ];
    (* F21 *) And [ Or [ lit a; lit b ]; c ^: d ];
    (* F22 *) Or [ a ^: d; And [ lit b; lit c ] ];
    (* F23 *) Or [ lit a; And [ b ^: d; lit c ] ];
    (* F24 *) Or [ a ^: d; And [ b ^: d; lit c ] ];
    (* F25 *) Or [ lit a; And [ b ^: d; c ^: d ] ];
    (* F26 *) Or [ a ^: d; And [ b ^: d; c ^: d ] ];
    (* F27 *) And [ a ^: d; lit b; lit c ];
    (* F28 *) And [ a ^: d; b ^: d; lit c ];
    (* F29 *) And [ a ^: d; b ^: d; c ^: d ];
    (* F30 *) Or [ a ^: d; b ^: e; lit c ];
    (* F31 *) Or [ a ^: d; b ^: d; c ^: e ];
    (* F32 *) And [ Or [ a ^: d; b ^: e ]; lit c ];
    (* F33 *) And [ Or [ a ^: d; lit b ]; c ^: e ];
    (* F34 *) And [ Or [ a ^: d; b ^: d ]; c ^: e ];
    (* F35 *) And [ Or [ a ^: d; b ^: e ]; c ^: d ];
    (* F36 *) Or [ a ^: d; And [ b ^: e; lit c ] ];
    (* F37 *) Or [ lit a; And [ b ^: d; c ^: e ] ];
    (* F38 *) Or [ a ^: d; And [ b ^: e; c ^: e ] ];
    (* F39 *) Or [ a ^: d; And [ b ^: e; c ^: d ] ];
    (* F40 *) And [ a ^: d; b ^: e; lit c ];
    (* F41 *) And [ a ^: d; b ^: d; c ^: e ];
    (* F42 *) Or [ a ^: d; b ^: e; c ^: f ];
    (* F43 *) And [ Or [ a ^: d; b ^: e ]; c ^: f ];
    (* F44 *) Or [ a ^: d; And [ b ^: e; c ^: f ] ];
    (* F45 *) And [ a ^: d; b ^: e; c ^: f ];
  |]

let all =
  Array.to_list
    (Array.mapi
       (fun i spec -> { index = i; name = Printf.sprintf "F%02d" i; spec })
       specs)

let find name = List.find (fun e -> e.name = name) all

let is_cmos_expressible e = Gate_spec.num_xors e.spec = 0
let cmos_subset = List.filter is_cmos_expressible all
