(** Algebraic specifications of library cells.

    The paper's gates (Table 1) are series/parallel compositions of plain
    literals and two-input XOR terms — XOR being the operation an ambipolar
    CNTFET transmission gate (or a single ambipolar pass device) provides
    natively.  Input variables are numbered 0..5 and conventionally printed
    A..F.  Phases are explicit so that the complement form (used for the
    opposite pull network) stays in the same shape class: a complemented
    literal is the same ambipolar device configured with the other polarity,
    and a complemented XOR term is an XNOR transmission gate. *)

type expr =
  | Lit of int * bool        (** variable, phase ([true] = positive) *)
  | Xor of int * int * bool  (** [true] = XOR, [false] = XNOR *)
  | And of expr list
  | Or of expr list

val lit : int -> expr
val ( ^: ) : int -> int -> expr
(** [a ^: b] is the XOR term of variables [a] and [b]. *)

val vars : expr -> int list
(** Variables used, ascending, without duplicates. *)

val arity : expr -> int
(** [1 + max variable index]; inputs are assumed contiguous from 0. *)

val num_xors : expr -> int

val max_stack : expr -> int
(** Maximum number of switch elements in series in the corresponding
    series/parallel network (the paper's "no more than 3 in series"). *)

val eval : expr -> (int -> bool) -> bool

val to_tt : int -> expr -> Tt.t
(** Truth table over [n >= arity] variables. *)

val tt6 : expr -> int64
(** Truth table as a 6-variable replicated word (the {!Tt} convention). *)

val complement_form : expr -> expr
(** De Morgan dual with phases absorbed into literals and XOR terms; its
    value is the pointwise negation of the argument. *)

val var_name : int -> string
val pp : Format.formatter -> expr -> unit
