open Cell_netlist

type row = {
  name : string;
  family : Cell_netlist.family;
  spec : Gate_spec.expr;
  transistors : int;
  area : float;
  fo4_worst : float;
  fo4_avg : float;
}

let tau_ps = function Cmos -> 3.00 | _ -> 0.59
let inverter_cin = function Cmos -> 3.0 | _ -> 2.0
let inverter_area = function Cmos -> 3.0 | _ -> 2.0

let output_parasitic (c : cell) =
  (match c.pull_up with Some n -> top_cap n | None -> c.bias_width)
  +. top_cap c.pull_down

let cap_table (c : cell) =
  let caps : (signal, float) Hashtbl.t = Hashtbl.create 16 in
  let add s w =
    let cur = try Hashtbl.find caps s with Not_found -> 0.0 in
    Hashtbl.replace caps s (cur +. w)
  in
  List.iter
    (fun d ->
      add d.gate d.width;
      match d.polgate with Some pg -> add pg d.width | None -> ())
    (devices c);
  caps

let input_cap c s =
  match Hashtbl.find_opt (cap_table c) s with Some x -> x | None -> 0.0

(* Worst-case path resistances of the cell's transitions. *)
let transition_resistances (c : cell) =
  match c.family with
  | Tg_static | Pass_static | Cmos ->
      [ (match c.pull_up with
        | Some pu -> resistance pu
        | None -> assert false);
        resistance c.pull_down ]
  | Tg_pseudo | Pass_pseudo ->
      (* rising through the weak always-on pull-up, falling through the
         pull-down fighting it (net conductance 4/3 - 1/3 = 1) *)
      [ 1.0 /. c.bias_width; 1.0 ]

let characterize family (entry : Catalog.entry) =
  let c = elaborate family entry.Catalog.spec in
  let caps = cap_table c in
  let c_par = output_parasitic c in
  let rs = transition_resistances c in
  let r_worst = List.fold_left max 0.0 rs in
  let cin_ref = inverter_cin family in
  (* FO4 of a signal driving four copies of this pin.  Static families take
     the worst transition (rise and fall are sized equal anyway); ratioed
     pseudo families report the rise/fall average, which is what Table 2's
     numbers correspond to (effective R of 2 between the weak pull-up's 3
     and the fighting pull-down's 1). *)
  let combine =
    match family with
    | Tg_pseudo | Pass_pseudo ->
        fun load ->
          List.fold_left (fun a r -> a +. (r *. load)) 0.0 rs
          /. float_of_int (List.length rs)
    | Tg_static | Pass_static | Cmos ->
        fun load -> List.fold_left (fun a r -> max a (r *. load)) 0.0 rs
  in
  let fo4_of_cap cap =
    let stage = combine in
    if c.restoring_inverter then
      (* first stage drives the restoring inverter; the inverter (unit,
         R = 1, parasitic 2) drives the four copies *)
      (stage (c_par +. 2.0) +. (2.0 +. (4.0 *. cap))) /. cin_ref
    else stage (c_par +. (4.0 *. cap)) /. cin_ref
  in
  ignore r_worst;
  let per_signal =
    Hashtbl.fold (fun s cap acc -> (s, fo4_of_cap cap) :: acc) caps []
  in
  let fo4_worst =
    List.fold_left (fun a (_, d) -> max a d) 0.0 per_signal
  in
  (* Per-variable worst, averaged over the variables of the function. *)
  let vars = Gate_spec.vars entry.Catalog.spec in
  let fo4_avg =
    let per_var v =
      List.fold_left
        (fun a (s, d) -> if s.v = v then max a d else a)
        0.0 per_signal
    in
    List.fold_left (fun a v -> a +. per_var v) 0.0 vars
    /. float_of_int (List.length vars)
  in
  {
    name = entry.Catalog.name;
    family;
    spec = entry.Catalog.spec;
    transistors = num_transistors c;
    area = area c;
    fo4_worst;
    fo4_avg;
  }

let characterize_catalog family =
  let entries =
    match family with Cmos -> Catalog.cmos_subset | _ -> Catalog.all
  in
  List.map (characterize family) entries

let averages rows =
  let n = float_of_int (List.length rows) in
  let t, a, w, v =
    List.fold_left
      (fun (t, a, w, v) r ->
        (t +. float_of_int r.transistors, a +. r.area, w +. r.fo4_worst,
         v +. r.fo4_avg))
      (0.0, 0.0, 0.0, 0.0) rows
  in
  (t /. n, a /. n, w /. n, v /. n)

let with_output_inverter r =
  (* Appending the unit inverter: +2 transistors, + inverter area; the
     inverter input adds parasitic load on the cell (one more FO1-ish term)
     — a first-order documented approximation. *)
  let cin_ref = inverter_cin r.family in
  let extra = (inverter_cin r.family +. 2.0) /. cin_ref in
  {
    r with
    transistors = r.transistors + 2;
    area = r.area +. inverter_area r.family;
    fo4_worst = r.fo4_worst +. extra;
    fo4_avg = r.fo4_avg +. extra;
  }
