type family = Tg_static | Tg_pseudo | Pass_pseudo | Pass_static | Cmos

let family_name = function
  | Tg_static -> "cntfet-tg-static"
  | Tg_pseudo -> "cntfet-tg-pseudo"
  | Pass_pseudo -> "cntfet-pass-pseudo"
  | Pass_static -> "cntfet-pass-static"
  | Cmos -> "cmos-static"

let all_families = [ Tg_static; Tg_pseudo; Pass_pseudo; Pass_static; Cmos ]

type signal = { v : int; ph : bool }

type kind = Configured | Pass | Cmos_n | Cmos_p

type device = {
  kind : kind;
  gate : signal;           (* signal driving the gate terminal *)
  polgate : signal option; (* driven polarity gate (TG halves, pass XOR) *)
  on : bool;               (* for single-control devices: conducts when the
                              raw input variable equals [on] *)
  width : float;
}

type net =
  | D of device
  | T of device * device
  | S of net list
  | P of net list

type cell = {
  family : family;
  spec : Gate_spec.expr;
  pull_up : net option;
  pull_down : net;
  bias_width : float;
  restoring_inverter : bool;
}

(* Worst-direction resistance factor of a single device of unit width. *)
let res_factor = function
  | Configured | Cmos_n -> 1.0
  | Pass | Cmos_p -> 2.0

(* ---- structural construction (widths filled by [size]) ---- *)

let mk_dev ?(on = true) kind gate polgate =
  { kind; gate; polgate; on; width = 0.0 }

let tg_pair a b xor_phase =
  (* Conducts when (a XOR b) = xor_phase.  An ambipolar device with gate u
     and polarity gate w conducts iff u <> w, so the pair below conducts iff
     a <> (b = xor_phase), i.e. iff (a XOR b) = xor_phase; the twin device
     sees both controls complemented and conducts simultaneously, in the
     opposite (good/weak) direction. *)
  let d1 =
    mk_dev Configured { v = a; ph = true } (Some { v = b; ph = xor_phase })
  in
  let d2 =
    mk_dev Configured { v = a; ph = false }
      (Some { v = b; ph = not xor_phase })
  in
  T (d1, d2)

let pass_dev a b xor_phase =
  D (mk_dev Pass { v = a; ph = true } (Some { v = b; ph = xor_phase }))

(* TG halves are Configured above only structurally; their kind matters for
   sizing of single devices, while [T] carries its own 2R/3 rule. *)

let rec build family cmos_side expr =
  match expr with
  | Gate_spec.Lit (v, ph) ->
      let kind =
        match family with
        | Cmos -> if cmos_side = `Pd then Cmos_n else Cmos_p
        | _ -> Configured
      in
      (* Every single-control device is driven by the positive input
         signal: the conduction phase is provided by the in-field polarity
         configuration (CNTFET) or by the device type and network position
         (CMOS).  Only XOR transmission/pass structures need both input
         polarities (Sec. 4.3). *)
      D (mk_dev ~on:ph kind { v; ph = true } None)
  | Gate_spec.Xor (a, b, ph) -> (
      match family with
      | Cmos -> invalid_arg "Cell_netlist: XOR term in a CMOS cell"
      | Tg_static | Tg_pseudo -> tg_pair a b ph
      | Pass_static | Pass_pseudo -> pass_dev a b ph)
  | Gate_spec.And es -> S (List.map (build family cmos_side) es)
  | Gate_spec.Or es -> P (List.map (build family cmos_side) es)

(* Flatten nested series/parallel of the same flavor (And [x; And [y; z]]
   cannot occur from the catalog, but keep the invariant anyway). *)
let rec flatten = function
  | (D _ | T _) as n -> n
  | S es -> (
      match
        List.concat_map
          (fun e -> match flatten e with S xs -> xs | x -> [ x ])
          es
      with
      | [ x ] -> x
      | xs -> S xs)
  | P es -> (
      match
        List.concat_map
          (fun e -> match flatten e with P xs -> xs | x -> [ x ])
          es
      with
      | [ x ] -> x
      | xs -> P xs)

(* ---- sizing ---- *)

let rec size g = function
  | D dev -> D { dev with width = res_factor dev.kind *. g }
  | T (d1, d2) ->
      let w = 2.0 /. 3.0 *. g in
      T ({ d1 with width = w }, { d2 with width = w })
  | S es ->
      let n = float_of_int (List.length es) in
      S (List.map (size (g *. n)) es)
  | P es -> P (List.map (size g) es)

(* Capacitance presented to the adjacent node by an element: one drain per
   device connected to it. *)
let rec top_cap = function
  | D d -> d.width
  | T (d1, d2) -> d1.width +. d2.width
  | S [] -> 0.0
  | S (e :: _) -> top_cap e
  | P es -> List.fold_left (fun a e -> a +. top_cap e) 0.0 es

(* Order series stacks with the smallest-capacitance element adjacent to
   the output: this minimizes the parasitic on the output node, which is
   how the paper's stacks are drawn (e.g. Fig. 4, F04/F05). *)
let rec order_stacks = function
  | (D _ | T _) as n -> n
  | S es ->
      let es = List.map order_stacks es in
      S (List.stable_sort (fun a b -> compare (top_cap a) (top_cap b)) es)
  | P es -> P (List.map order_stacks es)

let elaborate family spec =
  let pu, pd, bias, inv =
    match family with
    | Tg_static | Pass_static ->
        let pu = flatten (build family `Pu spec) in
        let pd = flatten (build family `Pd (Gate_spec.complement_form spec)) in
        ( Some (order_stacks (size 1.0 pu)),
          order_stacks (size 1.0 pd), 0.0, family = Pass_static )
    | Cmos ->
        let pd = flatten (build family `Pd spec) in
        let pu = flatten (build family `Pu (Gate_spec.complement_form spec)) in
        (Some (order_stacks (size 1.0 pu)), order_stacks (size 1.0 pd), 0.0, false)
    | Tg_pseudo | Pass_pseudo ->
        (* The pull-down implements the function itself (inverting cell);
           conductance 4/3 against an always-on 1/3 pull-up: worst-case
           drive 1, strength ratio 4 (Sec. 4.2). *)
        let pd = flatten (build family `Pd spec) in
        (None, order_stacks (size (4.0 /. 3.0) pd), 1.0 /. 3.0, false)
  in
  { family; spec; pull_up = pu; pull_down = pd; bias_width = bias;
    restoring_inverter = inv }

(* ---- queries ---- *)

let rec net_devices = function
  | D d -> [ d ]
  | T (d1, d2) -> [ d1; d2 ]
  | S es | P es -> List.concat_map net_devices es

let devices c =
  (match c.pull_up with Some n -> net_devices n | None -> [])
  @ net_devices c.pull_down

let num_transistors c =
  List.length (devices c)
  + (if c.bias_width > 0.0 then 1 else 0)
  + if c.restoring_inverter then 2 else 0

let area c =
  List.fold_left (fun a d -> a +. d.width) 0.0 (devices c)
  +. c.bias_width
  +. if c.restoring_inverter then 2.0 else 0.0

let rec resistance = function
  | D d -> res_factor d.kind /. d.width
  | T (d1, _) -> 2.0 /. 3.0 /. d1.width
  | S es -> List.fold_left (fun r e -> r +. resistance e) 0.0 es
  | P es -> List.fold_left (fun r e -> max r (resistance e)) 0.0 es

let signal_value bits s = bits s.v = s.ph

let device_conducts d bits =
  match d.polgate with
  | Some pg -> signal_value bits d.gate <> signal_value bits pg
  | None -> bits d.gate.v = d.on

let rec net_conducts n bits =
  match n with
  | D d -> device_conducts d bits
  | T (d1, d2) -> device_conducts d1 bits || device_conducts d2 bits
  | S es -> List.for_all (fun e -> net_conducts e bits) es
  | P es -> List.exists (fun e -> net_conducts e bits) es

let pp_signal fmt s =
  Format.fprintf fmt "%s%s" (Gate_spec.var_name s.v) (if s.ph then "" else "'")

let pp_device fmt d =
  let k =
    match d.kind with
    | Configured -> "cnt"
    | Pass -> "pass"
    | Cmos_n -> "nmos"
    | Cmos_p -> "pmos"
  in
  (match d.polgate with
  | None -> Format.fprintf fmt "%s(G=%a" k pp_signal d.gate
  | Some pg -> Format.fprintf fmt "%s(G=%a, PG=%a" k pp_signal d.gate pp_signal pg);
  Format.fprintf fmt ", W=%.3g)" d.width

let rec pp_net fmt = function
  | D d -> pp_device fmt d
  | T (d1, d2) -> Format.fprintf fmt "TG[%a | %a]" pp_device d1 pp_device d2
  | S es ->
      Format.fprintf fmt "series(";
      List.iteri
        (fun i e ->
          if i > 0 then Format.fprintf fmt ", ";
          pp_net fmt e)
        es;
      Format.fprintf fmt ")"
  | P es ->
      Format.fprintf fmt "par(";
      List.iteri
        (fun i e ->
          if i > 0 then Format.fprintf fmt ", ";
          pp_net fmt e)
        es;
      Format.fprintf fmt ")"

let pp_cell fmt c =
  Format.fprintf fmt "family: %s@\nspec: %a@\n" (family_name c.family)
    Gate_spec.pp c.spec;
  (match c.pull_up with
  | Some pu -> Format.fprintf fmt "PU: %a@\n" pp_net pu
  | None -> Format.fprintf fmt "PU: weak bias (W=%.3g)@\n" c.bias_width);
  Format.fprintf fmt "PD: %a" pp_net c.pull_down;
  if c.restoring_inverter then Format.fprintf fmt "@\n+ restoring inverter"
