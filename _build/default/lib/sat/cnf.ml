let lit_of vars l =
  let v = vars.(Aig.node_of l) in
  if Aig.is_compl l then Solver.neg v else Solver.pos v

let encode_with s aig mk_input_var =
  let n = Aig.num_nodes aig in
  let vars = Array.make n (-1) in
  (* constant node *)
  vars.(0) <- Solver.new_var s;
  Solver.add_clause s [ Solver.neg vars.(0) ];
  for i = 0 to Aig.num_inputs aig - 1 do
    vars.(i + 1) <- mk_input_var i
  done;
  Aig.iter_ands aig (fun nd ->
      let v = Solver.new_var s in
      vars.(nd) <- v;
      let a = lit_of vars (Aig.fanin0 aig nd) in
      let b = lit_of vars (Aig.fanin1 aig nd) in
      let y = Solver.pos v in
      (* y <-> a & b *)
      Solver.add_clause s [ Solver.lit_not y; a ];
      Solver.add_clause s [ Solver.lit_not y; b ];
      Solver.add_clause s [ y; Solver.lit_not a; Solver.lit_not b ]);
  vars

let encode s aig = encode_with s aig (fun _ -> Solver.new_var s)

let encode_shared s aig ~inputs =
  if Array.length inputs <> Aig.num_inputs aig then
    invalid_arg "Cnf.encode_shared";
  encode_with s aig (fun i -> inputs.(i))
