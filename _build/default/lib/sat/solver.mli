(** A CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal propagation,
    first-UIP conflict analysis, VSIDS branching, phase saving and Luby
    restarts.  Good enough for the combinational-equivalence queries this
    project issues (tens of thousands of variables).

    Literal encoding: variable [v] yields the positive literal [2*v] and the
    negative literal [2*v+1]. *)

type t

type result = Sat | Unsat | Unknown

val create : unit -> t

val new_var : t -> int
(** Returns the new variable's index. *)

val num_vars : t -> int

val pos : int -> int
(** Positive literal of a variable. *)

val neg : int -> int
(** Negative literal of a variable. *)

val lit_not : int -> int

val add_clause : t -> int list -> unit
(** Adding the empty clause (or clauses that simplify to it at level 0)
    makes the instance trivially unsatisfiable. *)

val solve : ?conflict_budget:int -> t -> result
(** Runs the search, optionally bounded by a number of conflicts
    ([Unknown] when exhausted).  May be called repeatedly after adding more
    clauses (incremental use). *)

val model_value : t -> int -> bool
(** Value of a variable in the model found by the last [Sat] answer. *)

val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
