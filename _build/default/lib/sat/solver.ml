(* CDCL solver.  Clauses live in a single int arena: a clause is
   [size; lit_0; ...; lit_{size-1}] and is referred to by the offset of its
   size field.  The first two literals of a clause are its watches. *)

type result = Sat | Unsat | Unknown

module Vec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 16 0; n = 0 }

  let push v x =
    if v.n >= Array.length v.a then begin
      let b = Array.make (2 * Array.length v.a) 0 in
      Array.blit v.a 0 b 0 v.n;
      v.a <- b
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let get v i = v.a.(i)
  let set v i x = v.a.(i) <- x
  let size v = v.n
  let shrink v n = v.n <- n
  let _clear v = v.n <- 0
end

type t = {
  mutable nvars : int;
  mutable assigns : int array;      (* var -> -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array;       (* var -> clause offset, or -1 *)
  mutable activity : float array;
  mutable polarity : bool array;    (* saved phase *)
  mutable heap_pos : int array;     (* var -> heap index or -1 *)
  heap : Vec.t;                     (* binary max-heap of vars *)
  arena : Vec.t;
  mutable watches : Vec.t array;    (* lit -> clause offsets *)
  trail : Vec.t;
  trail_lim : Vec.t;
  mutable qhead : int;
  mutable var_inc : float;
  mutable seen : bool array;
  mutable ok : bool;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
}

let create () =
  {
    nvars = 0;
    assigns = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    activity = Array.make 16 0.0;
    polarity = Array.make 16 false;
    heap_pos = Array.make 16 (-1);
    heap = Vec.create ();
    arena = Vec.create ();
    watches = Array.init 32 (fun _ -> Vec.create ());
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    var_inc = 1.0;
    seen = Array.make 16 false;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
  }

let pos v = 2 * v
let neg v = (2 * v) + 1
let lit_not l = l lxor 1
let lit_var l = l lsr 1
let lit_sign l = l land 1 = 0 (* true for positive *)

let num_vars s = s.nvars
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations

(* -1 unassigned, 0 false, 1 true *)
let lit_value s l =
  let a = s.assigns.(lit_var l) in
  if a < 0 then -1 else if lit_sign l then a else 1 - a

(* Heap operations (max-heap on activity). *)
let heap_less s v1 v2 = s.activity.(v1) > s.activity.(v2)

let heap_swap s i j =
  let a = Vec.get s.heap i and b = Vec.get s.heap j in
  Vec.set s.heap i b;
  Vec.set s.heap j a;
  s.heap_pos.(a) <- j;
  s.heap_pos.(b) <- i

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less s (Vec.get s.heap i) (Vec.get s.heap p) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let n = Vec.size s.heap in
  let best = ref i in
  if l < n && heap_less s (Vec.get s.heap l) (Vec.get s.heap !best) then best := l;
  if r < n && heap_less s (Vec.get s.heap r) (Vec.get s.heap !best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    Vec.push s.heap v;
    s.heap_pos.(v) <- Vec.size s.heap - 1;
    heap_up s (Vec.size s.heap - 1)
  end

let heap_pop s =
  let top = Vec.get s.heap 0 in
  let last = Vec.get s.heap (Vec.size s.heap - 1) in
  Vec.shrink s.heap (Vec.size s.heap - 1);
  s.heap_pos.(top) <- -1;
  if Vec.size s.heap > 0 then begin
    Vec.set s.heap 0 last;
    s.heap_pos.(last) <- 0;
    heap_down s 0
  end;
  top

let grow_arrays s =
  let n = Array.length s.assigns in
  let m = 2 * n in
  let ext def a =
    let b = Array.make m def in
    Array.blit a 0 b 0 n;
    b
  in
  s.assigns <- ext (-1) s.assigns;
  s.level <- ext 0 s.level;
  s.reason <- ext (-1) s.reason;
  s.activity <- Array.append s.activity (Array.make n 0.0);
  s.polarity <- Array.append s.polarity (Array.make n false);
  s.heap_pos <- ext (-1) s.heap_pos;
  s.seen <- Array.append s.seen (Array.make n false);
  let w = Array.init (2 * m) (fun _ -> Vec.create ()) in
  Array.blit s.watches 0 w 0 (2 * n);
  s.watches <- w

let new_var s =
  if s.nvars >= Array.length s.assigns then grow_arrays s;
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assigns.(v) <- -1;
  s.reason.(v) <- -1;
  s.heap_pos.(v) <- -1;
  heap_insert s v;
  v

let decision_level s = Vec.size s.trail_lim

let enqueue s l reason =
  s.assigns.(lit_var l) <- (if lit_sign l then 1 else 0);
  s.level.(lit_var l) <- decision_level s;
  s.reason.(lit_var l) <- reason;
  Vec.push s.trail l

(* Returns the offset of a conflicting clause, or -1. *)
let propagate s =
  let confl = ref (-1) in
  while !confl < 0 && s.qhead < Vec.size s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let false_lit = lit_not p in
    let ws = s.watches.(false_lit) in
    let i = ref 0 and j = ref 0 in
    let n = Vec.size ws in
    while !i < n do
      let cref = Vec.get ws !i in
      incr i;
      if !confl >= 0 then begin
        (* conflict found: keep remaining watches untouched *)
        Vec.set ws !j cref;
        incr j
      end
      else begin
        let size = Vec.get s.arena cref in
        (* Ensure the false literal is at position 1. *)
        if Vec.get s.arena (cref + 1) = false_lit then begin
          Vec.set s.arena (cref + 1) (Vec.get s.arena (cref + 2));
          Vec.set s.arena (cref + 2) false_lit
        end;
        let first = Vec.get s.arena (cref + 1) in
        if lit_value s first = 1 then begin
          (* satisfied: keep watching *)
          Vec.set ws !j cref;
          incr j
        end
        else begin
          (* find a new watch *)
          let found = ref false in
          let k = ref 3 in
          while (not !found) && !k <= size do
            let l = Vec.get s.arena (cref + !k) in
            if lit_value s l <> 0 then begin
              Vec.set s.arena (cref + 2) l;
              Vec.set s.arena (cref + !k) false_lit;
              (* [l] is not false, hence [l <> false_lit]: never the list
                 being compacted. *)
              Vec.push s.watches.(l) cref;
              found := true
            end;
            incr k
          done;
          if not !found then begin
            (* unit or conflict *)
            Vec.set ws !j cref;
            incr j;
            if lit_value s first = 0 then confl := cref
            else enqueue s first cref
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !confl

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for u = 0 to s.nvars - 1 do
      s.activity.(u) <- s.activity.(u) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let var_decay s = s.var_inc <- s.var_inc /. 0.95

(* Install a clause already pushed in the arena at [cref].  A clause
   watching literal [w] is registered in [watches.(w)]; propagation of a
   newly-true [p] therefore visits [watches.(lit_not p)]. *)
let attach s cref =
  Vec.push s.watches.(Vec.get s.arena (cref + 1)) cref;
  Vec.push s.watches.(Vec.get s.arena (cref + 2)) cref

let push_clause s lits =
  let cref = Vec.size s.arena in
  Vec.push s.arena (List.length lits);
  List.iter (Vec.push s.arena) lits;
  attach s cref;
  cref

let backtrack s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = lit_var l in
      s.assigns.(v) <- -1;
      s.polarity.(v) <- lit_sign l;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.size s.trail
  end

(* First-UIP conflict analysis.  Returns (learned clause with the asserting
   literal first, backtrack level). *)
let analyze s confl =
  let learned = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let idx = ref (Vec.size s.trail - 1) in
  let confl = ref confl in
  let continue = ref true in
  let btlevel = ref 0 in
  while !continue do
    let size = Vec.get s.arena !confl in
    let start = if !p < 0 then 1 else 2 in
    for k = start to size do
      let q = Vec.get s.arena (!confl + k) in
      let v = lit_var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        var_bump s v;
        if s.level.(v) >= decision_level s then incr path
        else begin
          learned := q :: !learned;
          if s.level.(v) > !btlevel then btlevel := s.level.(v)
        end
      end
    done;
    (* find next literal to expand on the trail *)
    while not s.seen.(lit_var (Vec.get s.trail !idx)) do
      decr idx
    done;
    p := Vec.get s.trail !idx;
    decr idx;
    s.seen.(lit_var !p) <- false;
    decr path;
    if !path > 0 then confl := s.reason.(lit_var !p) else continue := false
  done;
  let clause = lit_not !p :: !learned in
  List.iter (fun l -> s.seen.(lit_var l) <- false) !learned;
  (clause, !btlevel)

let add_clause s lits =
  if s.ok then begin
    (* Incremental use: undo any model left by a previous [solve]. *)
    backtrack s 0;
    (* Level-0 simplification: drop false literals, detect satisfied or
       tautological clauses, deduplicate. *)
    let lits = List.sort_uniq compare lits in
    let tauto =
      List.exists (fun l -> List.mem (lit_not l) lits) lits
      || List.exists (fun l -> lit_value s l = 1) lits
    in
    if not tauto then begin
      let lits = List.filter (fun l -> lit_value s l <> 0) lits in
      match lits with
      | [] -> s.ok <- false
      | [ l ] ->
          enqueue s l (-1);
          if propagate s >= 0 then s.ok <- false
      | lits -> ignore (push_clause s lits)
    end
  end

(* The reluctant-doubling (Luby) sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 … *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do incr k done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

let decide s =
  let rec pick () =
    if Vec.size s.heap = 0 then -1
    else
      let v = heap_pop s in
      if s.assigns.(v) < 0 then v else pick ()
  in
  let v = pick () in
  if v < 0 then false
  else begin
    s.decisions <- s.decisions + 1;
    Vec.push s.trail_lim (Vec.size s.trail);
    enqueue s (if s.polarity.(v) then pos v else neg v) (-1);
    true
  end

exception Finished of result

let solve ?(conflict_budget = max_int) s =
  if not s.ok then Unsat
  else begin
    let budget = ref conflict_budget in
    let restart_num = ref 1 in
    let until_restart = ref (100 * luby !restart_num) in
    try
      while true do
        let confl = propagate s in
        if confl >= 0 then begin
          s.conflicts <- s.conflicts + 1;
          decr budget;
          decr until_restart;
          if decision_level s = 0 then begin
            s.ok <- false;
            raise (Finished Unsat)
          end;
          if !budget <= 0 then begin
            backtrack s 0;
            raise (Finished Unknown)
          end;
          let clause, btlevel = analyze s confl in
          backtrack s btlevel;
          (match clause with
          | [ l ] -> enqueue s l (-1)
          | l :: _ ->
              let cref = push_clause s clause in
              enqueue s l cref
          | [] -> assert false);
          var_decay s
        end
        else if !until_restart <= 0 then begin
          incr restart_num;
          until_restart := 100 * luby !restart_num;
          backtrack s 0
        end
        else if not (decide s) then
          (* Full assignment without conflict: the trail is the model; it is
             kept in place so [model_value] can read it. *)
          raise (Finished Sat)
      done;
      assert false
    with Finished r -> r
  end

let model_value s v =
  if v < 0 || v >= s.nvars then invalid_arg "Solver.model_value";
  s.assigns.(v) = 1
