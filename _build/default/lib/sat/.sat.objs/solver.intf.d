lib/sat/solver.mli:
