lib/sat/cnf.mli: Aig Solver
