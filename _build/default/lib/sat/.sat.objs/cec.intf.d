lib/sat/cec.mli: Aig
