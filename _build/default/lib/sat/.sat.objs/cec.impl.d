lib/sat/cec.ml: Aig Array Cnf Int64 Rand64 Solver
