(** Tseitin encoding of AIGs into CNF. *)

val lit_of : int array -> Aig.lit -> int
(** [lit_of vars l] is the solver literal for AIG literal [l], given the
    node-to-variable map returned by {!encode}. *)

val encode : Solver.t -> Aig.t -> int array
(** Adds one solver variable per AIG node (constant node included, clamped
    to false) and the three AND-gate clauses per node.  Returns the
    node-indexed variable map.  Can be called for several graphs on one
    solver; to share inputs use {!encode_shared}. *)

val encode_shared : Solver.t -> Aig.t -> inputs:int array -> int array
(** Like {!encode} but uses the given solver variables for the primary
    inputs ([inputs.(i)] for input [i]). *)
