lib/aig/cut.ml: Aig Array List
