lib/aig/aig.ml: Array Format Hashtbl Int64 List Printf Tt
