lib/aig/cut.mli: Aig
