lib/aig/aig.mli: Format Hashtbl Tt
