(** K-feasible priority cuts of an AIG (Pan–Mishchenko style).

    A cut of node [n] is a set of node ids such that every path from a
    primary input to [n] crosses the set; the function of [n] can then be
    expressed over the cut leaves.  Only a bounded number of cuts per node
    is kept, which is the standard compromise used by technology mappers. *)

type t = private {
  leaves : int array;  (** sorted ascending *)
  sign : int;          (** subset-test bloom filter *)
}

val trivial : int -> t
val size : t -> int
val dominates : t -> t -> bool
(** [dominates a b]: [a]'s leaves are a subset of [b]'s. *)

val compute : Aig.t -> k:int -> limit:int -> t list array
(** [compute aig ~k ~limit] returns, for every node, up to [limit]
    [k]-feasible cuts (the trivial cut included, always last).  Smaller and
    dominating cuts are preferred. *)
