type t = { leaves : int array; sign : int }

let signature leaves =
  Array.fold_left (fun s n -> s lor (1 lsl (n land 62))) 0 leaves

let trivial n = { leaves = [| n |]; sign = signature [| n |] }
let size c = Array.length c.leaves

let dominates a b =
  a.sign land b.sign = a.sign
  && Array.length a.leaves <= Array.length b.leaves
  &&
  (* both sorted: subset test by merge *)
  let la = a.leaves and lb = b.leaves in
  let na = Array.length la and nb = Array.length lb in
  let rec go i j =
    if i >= na then true
    else if j >= nb then false
    else if la.(i) = lb.(j) then go (i + 1) (j + 1)
    else if la.(i) > lb.(j) then go i (j + 1)
    else false
  in
  go 0 0

(* Merge two sorted leaf arrays; None if the union exceeds k. *)
let merge k a b =
  let na = Array.length a and nb = Array.length b in
  let buf = Array.make k 0 in
  let rec go i j m =
    if i >= na && j >= nb then Some m
    else if m >= k then None
    else if i >= na then begin
      buf.(m) <- b.(j);
      go i (j + 1) (m + 1)
    end
    else if j >= nb then begin
      buf.(m) <- a.(i);
      go (i + 1) j (m + 1)
    end
    else if a.(i) = b.(j) then begin
      buf.(m) <- a.(i);
      go (i + 1) (j + 1) (m + 1)
    end
    else if a.(i) < b.(j) then begin
      buf.(m) <- a.(i);
      go (i + 1) j (m + 1)
    end
    else begin
      buf.(m) <- b.(j);
      go i (j + 1) (m + 1)
    end
  in
  match go 0 0 0 with
  | None -> None
  | Some m ->
      let leaves = Array.sub buf 0 m in
      Some { leaves; sign = signature leaves }

let compute aig ~k ~limit =
  if k < 2 || k > 16 then invalid_arg "Cut.compute";
  let n = Aig.num_nodes aig in
  let cuts = Array.make n [] in
  cuts.(0) <- [ trivial 0 ];
  for i = 1 to Aig.num_inputs aig do
    cuts.(i) <- [ trivial i ]
  done;
  Aig.iter_ands aig (fun nd ->
      let c0 = cuts.(Aig.node_of (Aig.fanin0 aig nd)) in
      let c1 = cuts.(Aig.node_of (Aig.fanin1 aig nd)) in
      let acc = ref [] in
      let insert c =
        (* Drop if dominated by an existing cut; remove cuts it dominates. *)
        if not (List.exists (fun d -> dominates d c) !acc) then
          acc := c :: List.filter (fun d -> not (dominates c d)) !acc
      in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              match merge k a.leaves b.leaves with
              | Some c -> insert c
              | None -> ())
            c1)
        c0;
      let sorted =
        List.sort
          (fun a b ->
            let c = compare (size a) (size b) in
            if c <> 0 then c else compare a.leaves b.leaves)
          !acc
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: xs -> x :: take (n - 1) xs
      in
      cuts.(nd) <- take (limit - 1) sorted @ [ trivial nd ]);
  cuts
