(** Multi-level logic optimization on AIGs.

    The passes mirror the algorithm family behind ABC's [resyn2rs] script,
    which the paper runs before mapping (Sec. 4.4):
    - {!balance} — rebuilds AND trees in minimum-depth (Huffman) order;
    - {!rewrite} — DAG-aware replacement of small (4-cut) cones by better
      factored-form structures;
    - {!refactor} — the same with large reconvergent cuts (10 leaves),
      using ISOP + algebraic factoring to re-express each cone;
    - {!resyn2rs} — the composed script.

    Every pass returns a fresh, structurally hashed, dead-node-free AIG
    that is combinationally equivalent to its input (tested by CEC). *)

val balance : Aig.t -> Aig.t

val rewrite : ?zero_gain:bool -> Aig.t -> Aig.t
(** Cut size 4; replaces a cone when the factored rebuild uses fewer nodes
    than the cone's MFFC ([zero_gain] accepts equal size, useful as a
    perturbation between other passes). *)

val refactor : ?zero_gain:bool -> ?cut_size:int -> Aig.t -> Aig.t
(** Default cut size 10 (at most {!Tt.max_vars}). *)

val resyn2rs : Aig.t -> Aig.t
(** b; rw; rf; b; rw; rw -z; b; rf -z; rw -z; b. *)

val light : Aig.t -> Aig.t
(** b; rw; b — a cheap script for quick runs. *)
