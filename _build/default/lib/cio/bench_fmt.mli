(** ISCAS-style [.bench] format: [INPUT(x)], [OUTPUT(y)],
    [y = OP(a, b, ...)] with OP in AND/NAND/OR/NOR/XOR/XNOR/NOT/BUFF.
    Multi-operand gates associate left. *)

val to_string : Aig.t -> string
val write : out_channel -> Aig.t -> unit
val of_string : string -> Aig.t
val read : in_channel -> Aig.t
