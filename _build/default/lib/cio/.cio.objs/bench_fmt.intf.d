lib/cio/bench_fmt.mli: Aig
