lib/cio/blif.mli: Aig Mapped
