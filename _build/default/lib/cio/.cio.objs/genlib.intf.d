lib/cio/genlib.mli: Cell_lib
