lib/cio/bench_fmt.ml: Aig Array Buffer Hashtbl In_channel List Printf String
