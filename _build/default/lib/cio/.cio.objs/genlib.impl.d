lib/cio/genlib.ml: Array Buffer Cell_lib Char Cube List Printf Sop String Tt
