lib/cio/blif.ml: Aig Array Buffer Char Hashtbl In_channel List Mapped Printf String
