let node_name aig n =
  if n = 0 then "GND"
  else if Aig.is_input aig n then Aig.input_name aig (n - 1)
  else Printf.sprintf "n%d" n

let lit_ref aig buf l =
  (* .bench has no complemented references: emit NOT gates on demand *)
  let n = Aig.node_of l in
  if Aig.is_compl l then begin
    let bar = node_name aig n ^ "_b" in
    if not (Hashtbl.mem buf bar) then Hashtbl.replace buf bar (node_name aig n);
    bar
  end
  else node_name aig n

let to_string aig =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  for i = 0 to Aig.num_inputs aig - 1 do
    add "INPUT(%s)\n" (Aig.input_name aig i)
  done;
  Array.iter (fun (name, _) -> add "OUTPUT(%s)\n" name) (Aig.outputs aig);
  let bars = Hashtbl.create 64 in
  let body = Buffer.create 4096 in
  let addb fmt = Printf.ksprintf (Buffer.add_string body) fmt in
  Aig.iter_ands aig (fun n ->
      let a = lit_ref aig bars (Aig.fanin0 aig n) in
      let c = lit_ref aig bars (Aig.fanin1 aig n) in
      addb "%s = AND(%s, %s)\n" (node_name aig n) a c);
  Array.iter
    (fun (name, l) ->
      let r = lit_ref aig bars l in
      addb "%s = BUFF(%s)\n" name r)
    (Aig.outputs aig);
  Hashtbl.iter (fun bar base -> add "%s = NOT(%s)\n" bar base) bars;
  Buffer.add_buffer b body;
  Buffer.contents b

let write oc aig = output_string oc (to_string aig)

(* ---------------- reading ---------------- *)

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map (fun l ->
           match String.index_opt l '#' with
           | Some i -> String.sub l 0 i
           | None -> l)
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let inputs = ref [] and outputs = ref [] and defs = ref [] in
  let parse_call s =
    (* "OP(a, b, ...)" *)
    match String.index_opt s '(' with
    | None -> failwith ("Bench: expected call, got " ^ s)
    | Some i ->
        let op = String.trim (String.sub s 0 i) in
        let close = String.rindex s ')' in
        let args = String.sub s (i + 1) (close - i - 1) in
        let args =
          String.split_on_char ',' args |> List.map String.trim
          |> List.filter (fun a -> a <> "")
        in
        (String.uppercase_ascii op, args)
  in
  List.iter
    (fun line ->
      match String.index_opt line '=' with
      | None ->
          let op, args = parse_call line in
          (match (op, args) with
          | "INPUT", [ x ] -> inputs := x :: !inputs
          | "OUTPUT", [ x ] -> outputs := x :: !outputs
          | _ -> failwith ("Bench: bad declaration " ^ line))
      | Some i ->
          let name = String.trim (String.sub line 0 i) in
          let rhs = String.sub line (i + 1) (String.length line - i - 1) in
          defs := (name, parse_call (String.trim rhs)) :: !defs)
    lines;
  let inputs = List.rev !inputs and outputs = List.rev !outputs in
  let g = Aig.create () in
  let signals = Hashtbl.create 64 in
  List.iter
    (fun name -> Hashtbl.replace signals name (Aig.add_input ~name g))
    inputs;
  let def_of = Hashtbl.create 64 in
  List.iter (fun (n, d) -> Hashtbl.replace def_of n d) !defs;
  let rec signal name =
    match Hashtbl.find_opt signals name with
    | Some l -> l
    | None -> (
        match Hashtbl.find_opt def_of name with
        | None -> failwith ("Bench: undriven signal " ^ name)
        | Some (op, args) ->
            let ins = List.map signal args in
            let l =
              match (op, ins) with
              | "AND", ls -> Aig.mk_and_list g ls
              | "NAND", ls -> Aig.lnot (Aig.mk_and_list g ls)
              | "OR", ls -> Aig.mk_or_list g ls
              | "NOR", ls -> Aig.lnot (Aig.mk_or_list g ls)
              | "XOR", l0 :: ls -> List.fold_left (Aig.mk_xor g) l0 ls
              | "XNOR", l0 :: ls ->
                  Aig.lnot (List.fold_left (Aig.mk_xor g) l0 ls)
              | "NOT", [ l ] -> Aig.lnot l
              | "BUFF", [ l ] | "BUF", [ l ] -> l
              | _ -> failwith ("Bench: bad gate " ^ op)
            in
            Hashtbl.replace signals name l;
            l)
  in
  List.iter (fun name -> Aig.add_output g name (signal name)) outputs;
  g

let read ic = of_string (In_channel.input_all ic)
