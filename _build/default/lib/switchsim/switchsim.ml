open Cell_netlist

type level = L0 | L1
type strength = Strong | Degraded
type drive = Driven of level * strength | Floating | Contention

(* Effective polarity of a device whose polarity gate is driven: PG = 0
   configures n-type, PG = 1 configures p-type (Fig. 1d).  An n-type device
   passes 0 strongly and 1 weakly; p-type the other way around.  Devices
   with a statically configured polarity are always placed in their good
   direction by construction. *)
let device_strength d bits level =
  match d.polgate with
  | None -> Strong
  | Some pg ->
      let is_p = signal_value bits pg in
      (match (level, is_p) with
      | L1, true | L0, false -> Strong
      | L1, false | L0, true -> Degraded)

(* (conducts, best strength among conducting paths) *)
let rec net_drive n bits level =
  match n with
  | D d ->
      if device_conducts d bits then (true, device_strength d bits level)
      else (false, Degraded)
  | T (d1, d2) ->
      let c1 = device_conducts d1 bits and c2 = device_conducts d2 bits in
      if not (c1 || c2) then (false, Degraded)
      else
        let s1 = if c1 then device_strength d1 bits level else Degraded in
        let s2 = if c2 then device_strength d2 bits level else Degraded in
        (true, if s1 = Strong || s2 = Strong then Strong else Degraded)
  | S es ->
      List.fold_left
        (fun (c, s) e ->
          let ce, se = net_drive e bits level in
          (c && ce, if se = Degraded then Degraded else s))
        (true, Strong) es
  | P es ->
      let results = List.map (fun e -> net_drive e bits level) es in
      let conducts = List.exists fst results in
      let strong = List.exists (fun (c, s) -> c && s = Strong) results in
      (conducts, if strong then Strong else Degraded)

let stage_output (c : cell) bits =
  match c.pull_up with
  | Some pu -> (
      let up, sup = net_drive pu bits L1 in
      let dn, sdn = net_drive c.pull_down bits L0 in
      match (up, dn) with
      | true, true -> Contention
      | false, false -> Floating
      | true, false -> Driven (L1, sup)
      | false, true -> Driven (L0, sdn))
  | None ->
      (* ratioed pseudo logic: pull-down fights the weak always-on bias *)
      let dn, sdn = net_drive c.pull_down bits L0 in
      if dn then Driven (L0, sdn) else Driven (L1, Strong)

let cell_output (c : cell) bits =
  let s = stage_output c bits in
  if not c.restoring_inverter then s
  else
    match s with
    | Driven (L0, _) -> Driven (L1, Strong)
    | Driven (L1, _) -> Driven (L0, Strong)
    | other -> other

let logic_value c bits =
  match cell_output c bits with
  | Driven (L1, _) -> Some true
  | Driven (L0, _) -> Some false
  | Floating | Contention -> None

let for_all_assignments (c : cell) f =
  let n = Gate_spec.arity c.spec in
  let ok = ref true in
  for a = 0 to (1 lsl n) - 1 do
    if not (f a (fun v -> a land (1 lsl v) <> 0)) then ok := false
  done;
  !ok

let full_swing c =
  for_all_assignments c (fun _ bits ->
      match cell_output c bits with
      | Driven (_, Strong) -> true
      | Driven (_, Degraded) | Floating | Contention -> false)

let inverting (c : cell) =
  match c.family with
  | Tg_static -> false
  | Pass_static -> true (* restored node carries the complement *)
  | Tg_pseudo | Pass_pseudo | Cmos -> true

let check_function c =
  let inv = inverting c in
  for_all_assignments c (fun _ bits ->
      match logic_value c bits with
      | None -> false
      | Some v -> v = (Gate_spec.eval c.spec bits <> inv))

(* ---------------- dynamic GNOR (Sec. 3, Fig. 2) ---------------- *)

module Dynamic = struct
  type term = { input : bool; control : bool }

  (* The dynamic GNOR's pull-down is a parallel bank of single ambipolar
     devices: gate = input, polarity gate = control; a device conducts iff
     input <> control and is n-type (strong pull-down) iff the control is
     low.  The output is precharged high and discharges through whatever
     conducts during evaluation — the paper's problem case is every
     conducting device configured p-type (all controls high), which only
     pulls the output to ~|VTp| above ground. *)
  let gnor terms =
    let conducting =
      List.filter (fun t -> t.input <> t.control) terms
    in
    if conducting = [] then Driven (L1, Strong) (* stays precharged *)
    else if List.exists (fun t -> not t.control) conducting then
      Driven (L0, Strong)
    else Driven (L0, Degraded)

  (* Value of the gate seen as Y = OR of (input XOR control) terms, at the
     discharge node (inverting). *)
  let value terms =
    match gnor terms with
    | Driven (L0, _) -> false
    | Driven (L1, _) -> true
    | Floating | Contention -> assert false

  (* Does some input assignment degrade the output?  True for any GNOR with
     at least one term — the weakness that motivates the transmission-gate
     static family (Sec. 3.1). *)
  let has_degraded_assignment nterms =
    nterms >= 1
    &&
    (* all controls high, all inputs low: every device conducts as p-type *)
    let terms =
      List.init nterms (fun _ -> { input = false; control = true })
    in
    gnor terms = Driven (L0, Degraded)
end
