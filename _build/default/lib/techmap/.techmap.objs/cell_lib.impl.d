lib/techmap/cell_lib.ml: Array Cell_netlist Charlib Gate_spec Hashtbl Int64 List Npn
