lib/techmap/mapped.ml: Aig Array Format Hashtbl Int64 List Tt
