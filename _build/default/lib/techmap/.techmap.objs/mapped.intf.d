lib/techmap/mapped.mli: Aig Format
