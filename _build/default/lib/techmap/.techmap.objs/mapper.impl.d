lib/techmap/mapper.ml: Aig Array Cell_lib Cut Hashtbl Int64 List Mapped Npn Printf Tt
