lib/techmap/mapper.mli: Aig Cell_lib Mapped
