lib/techmap/cell_lib.mli: Cell_netlist
