(** Bit-vector construction helpers over an AIG (little-endian). *)

type t = Aig.lit array

val inputs : Aig.t -> string -> int -> t
(** [inputs g name n] appends [n] primary inputs named [name0..].  Must be
    called before any logic is built (AIG input ordering). *)

val outputs : Aig.t -> string -> t -> unit
val const_of_int : int -> int -> t
(** [const_of_int n v]: [n]-bit constant [v] as constant literals. *)

val width : t -> int
val bnot : t -> t
val band : Aig.t -> t -> t -> t
val bor : Aig.t -> t -> t -> t
val bxor : Aig.t -> t -> t -> t

val full_adder : Aig.t -> Aig.lit -> Aig.lit -> Aig.lit -> Aig.lit * Aig.lit
(** [(sum, carry)] *)

val add : Aig.t -> ?cin:Aig.lit -> t -> t -> t * Aig.lit
(** Ripple-carry sum and carry-out; operands must have equal width. *)

val sub : Aig.t -> t -> t -> t * Aig.lit
(** Two's-complement subtraction; the carry-out is the not-borrow. *)

val mul : Aig.t -> t -> t -> t
(** Carry-save array multiplier (the structure of C6288); the result has
    [width a + width b] bits. *)

val mux : Aig.t -> Aig.lit -> t -> t -> t
(** [mux g s a b = if s then a else b] bitwise. *)

val mux_tree : Aig.t -> t -> t array -> t
(** [mux_tree g sel ways]: select among [2^width sel] equal-width vectors. *)

val equal : Aig.t -> t -> t -> Aig.lit
val ult : Aig.t -> t -> t -> Aig.lit
(** Unsigned less-than. *)

val parity : Aig.t -> t -> Aig.lit
val reduce_or : Aig.t -> t -> Aig.lit
val reduce_and : Aig.t -> t -> Aig.lit

val shift_left : Aig.t -> t -> t -> t
(** Barrel shifter: shift amount is a (small) bit vector. *)

val shift_right : Aig.t -> t -> t -> t
val rotate_left1 : t -> t
val select : t -> int list -> t
(** Pick bits by index (permutation/expansion networks). *)
