(** Error-correcting circuits — the XOR-dominated substitution for the
    ISCAS-85 C1355/C1908 benchmarks (see DESIGN.md §3).

    A single-error-correcting block code over deterministic parity-group
    signatures: the encoder emits check bits, the decoder recomputes the
    syndrome and corrects the matching data bit. *)

val signature : int -> int -> int
(** [signature checks i]: the parity-group membership mask of data bit [i]
    (distinct, at least two bits set — which makes single errors
    correctable). *)

val encoder : data:int -> checks:int -> Aig.t
(** Inputs [d0..]; outputs the data (pass-through) and the check bits. *)

val decoder : data:int -> checks:int -> detect:bool -> Aig.t
(** Inputs data + check bits (+ overall parity when [detect]); outputs the
    corrected data, an error indicator, and — with [detect] — a
    double-error-detected flag. *)

val c1355_like : unit -> Aig.t
(** 32-bit single-error corrector (C1355's profile). *)

val c1908_like : unit -> Aig.t
(** 24-bit SEC/DED corrector (C1908's profile). *)
