lib/circuits/alu.mli: Aig Bitvec
