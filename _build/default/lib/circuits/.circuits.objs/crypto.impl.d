lib/circuits/crypto.ml: Aig Array Bitvec List Printf Rand64
