lib/circuits/bitvec.mli: Aig
