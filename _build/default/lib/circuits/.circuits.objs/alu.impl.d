lib/circuits/alu.ml: Aig Array Bitvec List Printf
