lib/circuits/ecc.mli: Aig
