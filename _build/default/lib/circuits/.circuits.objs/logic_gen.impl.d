lib/circuits/logic_gen.ml: Aig Array Bitvec Int64 Printf Rand64
