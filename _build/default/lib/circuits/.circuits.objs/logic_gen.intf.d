lib/circuits/logic_gen.mli: Aig
