lib/circuits/bench_suite.mli: Aig
