lib/circuits/arith.ml: Aig Array Bitvec
