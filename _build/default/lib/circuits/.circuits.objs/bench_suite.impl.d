lib/circuits/bench_suite.ml: Aig Alu Arith Crypto Ecc List Logic_gen
