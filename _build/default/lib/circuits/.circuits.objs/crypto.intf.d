lib/circuits/crypto.mli: Aig
