lib/circuits/bitvec.ml: Aig Array List Printf
