lib/circuits/ecc.ml: Aig Array Bitvec List
