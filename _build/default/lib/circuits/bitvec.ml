type t = Aig.lit array

let inputs g name n =
  Array.init n (fun i -> Aig.add_input ~name:(Printf.sprintf "%s%d" name i) g)

let outputs g name v =
  Array.iteri
    (fun i l -> Aig.add_output g (Printf.sprintf "%s%d" name i) l)
    v

let const_of_int n v =
  Array.init n (fun i ->
      if v land (1 lsl i) <> 0 then Aig.lit_true else Aig.lit_false)

let width = Array.length

let check_same a b name = if width a <> width b then invalid_arg name

let bnot a = Array.map Aig.lnot a
let band g a b = check_same a b "Bitvec.band"; Array.map2 (Aig.mk_and g) a b
let bor g a b = check_same a b "Bitvec.bor"; Array.map2 (Aig.mk_or g) a b
let bxor g a b = check_same a b "Bitvec.bxor"; Array.map2 (Aig.mk_xor g) a b

let full_adder g a b c =
  let axb = Aig.mk_xor g a b in
  let s = Aig.mk_xor g axb c in
  let carry = Aig.mk_or g (Aig.mk_and g a b) (Aig.mk_and g axb c) in
  (s, carry)

let add g ?(cin = Aig.lit_false) a b =
  check_same a b "Bitvec.add";
  let n = width a in
  let sum = Array.make n Aig.lit_false in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let s, c = full_adder g a.(i) b.(i) !carry in
    sum.(i) <- s;
    carry := c
  done;
  (sum, !carry)

let sub g a b = add g ~cin:Aig.lit_true a (bnot b)

let mul g a b =
  (* Column-wise carry-save array: partial products land in their column,
     and each column is reduced with full/half adders whose carries feed
     the next column — the classical structure of the C6288 benchmark. *)
  let na = width a and nb = width b in
  let n = na + nb in
  let cols = Array.make (n + 1) [] in
  for j = 0 to nb - 1 do
    for i = 0 to na - 1 do
      cols.(i + j) <- Aig.mk_and g a.(i) b.(j) :: cols.(i + j)
    done
  done;
  let result = Array.make n Aig.lit_false in
  for k = 0 to n - 1 do
    let rec reduce bits =
      match bits with
      | [] -> Aig.lit_false
      | [ x ] -> x
      | [ x; y ] ->
          let s, c = full_adder g x y Aig.lit_false in
          cols.(k + 1) <- c :: cols.(k + 1);
          s
      | x :: y :: z :: rest ->
          let s, c = full_adder g x y z in
          cols.(k + 1) <- c :: cols.(k + 1);
          (* queue order keeps the reduction tree balanced *)
          reduce (rest @ [ s ])
    in
    result.(k) <- reduce cols.(k)
  done;
  result

let mux g s a b =
  check_same a b "Bitvec.mux";
  Array.map2 (fun x y -> Aig.mk_mux g s x y) a b

let mux_tree g sel ways =
  let n = Array.length ways in
  if n = 0 then invalid_arg "Bitvec.mux_tree";
  if n <> 1 lsl width sel then invalid_arg "Bitvec.mux_tree: size mismatch";
  let rec go lo n level =
    if n = 1 then ways.(lo)
    else
      let half = n / 2 in
      let a = go (lo + half) half (level - 1) in
      let b = go lo half (level - 1) in
      mux g sel.(level) a b
  in
  go 0 n (width sel - 1)

let equal g a b =
  check_same a b "Bitvec.equal";
  let bits = Array.map2 (fun x y -> Aig.lnot (Aig.mk_xor g x y)) a b in
  Array.fold_left (Aig.mk_and g) Aig.lit_true bits

let ult g a b =
  (* a < b  <=>  borrow out of a - b *)
  let _, not_borrow = sub g a b in
  Aig.lnot not_borrow

let parity g v = Array.fold_left (Aig.mk_xor g) Aig.lit_false v
let reduce_or g v = Array.fold_left (Aig.mk_or g) Aig.lit_false v
let reduce_and g v = Array.fold_left (Aig.mk_and g) Aig.lit_true v

let shift_left g v amount =
  let n = width v in
  let cur = ref v in
  Array.iteri
    (fun k s ->
      let d = 1 lsl k in
      let shifted =
        Array.init n (fun i -> if i >= d then !cur.(i - d) else Aig.lit_false)
      in
      cur := mux g s shifted !cur)
    amount;
  !cur

let shift_right g v amount =
  let n = width v in
  let cur = ref v in
  Array.iteri
    (fun k s ->
      let d = 1 lsl k in
      let shifted =
        Array.init n (fun i ->
            if i + d < n then !cur.(i + d) else Aig.lit_false)
      in
      cur := mux g s shifted !cur)
    amount;
  !cur

let rotate_left1 v =
  let n = width v in
  Array.init n (fun i -> v.((i + n - 1) mod n))

let select v idxs = Array.of_list (List.map (fun i -> v.(i)) idxs)
