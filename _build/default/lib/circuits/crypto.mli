(** Feistel-cipher datapath — the substitution for the MCNC "des"
    benchmark.  DES-shaped structure (expansion, key mixing, 6-to-4
    S-boxes, permutation, Feistel XOR) with deterministic seeded S-box
    tables; see DESIGN.md §3. *)

val feistel : rounds:int -> unit -> Aig.t
(** 64-bit state, one 48-bit round key per round; outputs every round's
    right half plus the final state. *)

val des_like : unit -> Aig.t
(** Three rounds: 208 inputs / 160 outputs. *)
