(** ALU-and-control benchmark circuits — the substitutions for the
    ISCAS-85 C2670/C3540/C5315/C7552 and MCNC dalu benchmarks
    (see DESIGN.md §3 for interface profiles). *)

val alu_core :
  Aig.t -> Bitvec.t -> Bitvec.t -> Aig.lit -> Bitvec.t -> Bitvec.t * Aig.lit
(** Eight-operation ALU over existing vectors:
    add, sub, and, or, xor, nor, shift-left, not — selected by a 3-bit
    code.  Returns (result, carry-out). *)

val alu : width:int -> masked:bool -> result_only:bool -> unit -> Aig.t
(** Masked ALU with operation decode and (unless [result_only]) the flag
    outputs cout/zero/neg/eq/lt/parity. *)

val datapath :
  width:int ->
  masked:bool ->
  banks:(int * int) option ->
  aux_compare:int ->
  parity_bytes:int ->
  unit -> Aig.t
(** Wide ALU + optional selector banks + auxiliary comparator + byte
    parity — the "ALU and control"/"ALU and selector" class. *)

val c3540_like : unit -> Aig.t
val dalu_like : unit -> Aig.t
val c2670_like : unit -> Aig.t
val c5315_like : unit -> Aig.t
val c7552_like : unit -> Aig.t
