(** Structured synthetic control logic — the substitutions for the MCNC
    i10/i18/t481 benchmarks.  Deterministically seeded layered networks of
    AND/OR/XOR/MUX operators with a bounded XOR share (these circuits gain
    the least from the ambipolar library, as in the paper). *)

val layered :
  seed:int ->
  num_inputs:int ->
  num_outputs:int ->
  layers:int ->
  layer_width:int ->
  xor_pct:int ->
  unit -> Aig.t

val i10_like : unit -> Aig.t
(** 257 inputs / 224 outputs. *)

val i18_like : unit -> Aig.t
(** 133 inputs / 81 outputs. *)

val t481_like : unit -> Aig.t
(** 16-input single-output decision function (t481's profile). *)
