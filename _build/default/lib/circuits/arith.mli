(** Arithmetic benchmark circuits (Table 3's adders and multiplier). *)

val adder : int -> Aig.t
(** [adder n]: n-bit ripple-carry adder; inputs [a0..], [b0..], [cin],
    outputs [s0..], [cout] — the paper's add-16/32/64 benchmarks. *)

val multiplier : int -> Aig.t
(** [multiplier n]: n x n carry-save array multiplier (C6288 is the 16 x 16
    instance); outputs the [2n] product bits. *)

val addsub : int -> Aig.t
(** Adder/subtractor with zero/eq/lt flags (datapath building block). *)

val carry_select_adder : int -> block:int -> Aig.t
(** Carry-select adder: per-block dual sums selected by the incoming
    carry; same interface as {!adder}, lower depth, more area. *)
