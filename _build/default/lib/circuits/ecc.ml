(* Error-correcting circuits: XOR-dominated logic, the substitution for the
   ISCAS-85 C1355/C1908 benchmarks (both described as "error correcting").

   The code structure is a single-error-correcting block code: [checks]
   parity groups over [data] bits with deterministic (seeded) membership
   masks, a syndrome computation and a correction stage matching each
   bit's signature. *)

(* Deterministic parity-group signature of data bit [i]: a nonzero
   [checks]-bit pattern; distinct bits get distinct signatures, which makes
   single-bit errors correctable. *)
let signature checks i =
  let m = (1 lsl checks) - 1 in
  (* skip signatures with fewer than 2 bits set to spread group sizes *)
  let rec nth_valid k cand =
    let cand = cand land m in
    let pop =
      let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
      go cand 0
    in
    if cand <> 0 && pop >= 2 then
      if k = 0 then cand else nth_valid (k - 1) (cand + 1)
    else nth_valid k (cand + 1)
  in
  nth_valid i 1

(* Encoder: data in, data + check bits out. *)
let encoder ~data ~checks =
  let g = Aig.create ~size_hint:(data * checks * 8) () in
  let d = Bitvec.inputs g "d" data in
  let chk =
    Array.init checks (fun c ->
        let members =
          Array.to_list d
          |> List.filteri (fun i _ -> signature checks i land (1 lsl c) <> 0)
        in
        List.fold_left (Aig.mk_xor g) Aig.lit_false members)
  in
  Bitvec.outputs g "d" d;
  Bitvec.outputs g "c" chk;
  g

(* Decoder/corrector: received data + check bits in, corrected data out
   (plus an error indicator).  C1355-like: data=32, checks=8;
   C1908-like: data=16, checks=8 with a global parity for detection. *)
let decoder ~data ~checks ~detect =
  let g = Aig.create ~size_hint:(data * checks * 16) () in
  let d = Bitvec.inputs g "d" data in
  let c = Bitvec.inputs g "c" checks in
  let overall = if detect then Aig.add_input ~name:"p" g else Aig.lit_false in
  let syndrome =
    Array.init checks (fun k ->
        let members =
          Array.to_list d
          |> List.filteri (fun i _ -> signature checks i land (1 lsl k) <> 0)
        in
        let recomputed = List.fold_left (Aig.mk_xor g) Aig.lit_false members in
        Aig.mk_xor g recomputed c.(k))
  in
  let corrected =
    Array.mapi
      (fun i di ->
        (* flip bit i when the syndrome equals its signature *)
        let sg = signature checks i in
        let hit =
          Array.to_list syndrome
          |> List.mapi (fun k s ->
                 if sg land (1 lsl k) <> 0 then s else Aig.lnot s)
          |> Aig.mk_and_list g
        in
        Aig.mk_xor g di hit)
      d
  in
  Bitvec.outputs g "o" corrected;
  let any_syndrome = Bitvec.reduce_or g syndrome in
  Aig.add_output g "err" any_syndrome;
  if detect then begin
    (* double-error detection: nonzero syndrome with even overall parity *)
    let all_parity =
      Aig.mk_xor g
        (Bitvec.parity g d)
        (Aig.mk_xor g (Bitvec.parity g c) overall)
    in
    Aig.add_output g "ded" (Aig.mk_and g any_syndrome (Aig.lnot all_parity))
  end;
  g

let c1355_like () = decoder ~data:32 ~checks:8 ~detect:false
let c1908_like () = decoder ~data:24 ~checks:8 ~detect:true
