type entry = {
  name : string;
  description : string;
  build : unit -> Aig.t;
}

let all =
  [
    { name = "C2670"; description = "ALU and control"; build = Alu.c2670_like };
    { name = "C1908"; description = "Error correcting"; build = Ecc.c1908_like };
    { name = "C3540"; description = "ALU and control"; build = Alu.c3540_like };
    { name = "dalu"; description = "Dedicated ALU"; build = Alu.dalu_like };
    { name = "C7552"; description = "ALU and control"; build = Alu.c7552_like };
    { name = "C6288"; description = "Multiplier";
      build = (fun () -> Arith.multiplier 16) };
    { name = "C5315"; description = "ALU and selector"; build = Alu.c5315_like };
    { name = "des"; description = "Data encryption"; build = Crypto.des_like };
    { name = "i10"; description = "Logic"; build = Logic_gen.i10_like };
    { name = "t481"; description = "Logic"; build = Logic_gen.t481_like };
    { name = "i18"; description = "Logic"; build = Logic_gen.i18_like };
    { name = "C1355"; description = "Error correcting"; build = Ecc.c1355_like };
    { name = "add-16"; description = "16-bit adder";
      build = (fun () -> Arith.adder 16) };
    { name = "add-32"; description = "32-bit adder";
      build = (fun () -> Arith.adder 32) };
    { name = "add-64"; description = "64-bit adder";
      build = (fun () -> Arith.adder 64) };
  ]

let find name = List.find (fun e -> e.name = name) all
let names = List.map (fun e -> e.name) all
