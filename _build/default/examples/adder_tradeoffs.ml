(* The paper's motivating workload: n-bit adders are XOR-rich, so the
   ambipolar library shines on them.  This example sweeps adder widths and
   prints the area/delay ratios vs CMOS for both CNTFET families — the
   add-16/32/64 rows of Table 3.

     dune exec examples/adder_tradeoffs.exe *)

let () =
  Format.printf
    "width | family        | gates | area    | levels | delay | speedup@.";
  Format.printf
    "------+---------------+-------+---------+--------+-------+--------@.";
  List.iter
    (fun width ->
      let aig = Arith.adder width in
      let results = Core.compare_families aig in
      let cmos_ps =
        match List.rev results with
        | (_, s) :: _ -> s.Mapped.abs_delay_ps
        | [] -> nan
      in
      List.iter
        (fun (name, (s : Mapped.stats)) ->
          Format.printf "%5d | %-13s | %5d | %7.1f | %6d | %5.0f | %5.1fx@."
            width name s.Mapped.gates s.Mapped.area s.Mapped.levels
            s.Mapped.norm_delay
            (cmos_ps /. s.Mapped.abs_delay_ps))
        results)
    [ 8; 16; 32; 64 ];
  Format.printf
    "@.(speedup = CMOS absolute delay / this library's absolute delay;@.";
  Format.printf
    " the technology factor tau1/tau2 = 0.59/3.00 ps is included)@."
