examples/multiplier_flow.ml: Aig Arith Array Cell_lib Core Format List Mapped Mapper Rand64 Synth
