examples/fabric_demo.ml: Arith Core Fabric Format List Mapped
