examples/adder_tradeoffs.mli:
