examples/adder_tradeoffs.ml: Arith Core Format List Mapped
