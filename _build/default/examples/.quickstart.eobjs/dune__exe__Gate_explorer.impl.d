examples/gate_explorer.ml: Array Catalog Cell_netlist Charlib Format Gate_spec List Paper_data Printf Switchsim Sys
