examples/gate_explorer.mli:
