examples/quickstart.mli:
