examples/quickstart.ml: Aig Arith Array Core Format List Mapped
