examples/fabric_demo.mli:
