examples/multiplier_flow.mli:
