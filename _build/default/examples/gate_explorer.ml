(* Inspect any catalog cell across the four CNTFET families and CMOS:
   transistor netlist, sizing, characterization, and the switch-level
   full-swing check of Sec. 3.

     dune exec examples/gate_explorer.exe            (defaults to F05)
     dune exec examples/gate_explorer.exe -- F09 *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "F05" in
  let entry =
    try Catalog.find name
    with Not_found ->
      Printf.eprintf "unknown gate %s (use F00..F45)\n" name;
      exit 1
  in
  Format.printf "%s: %a@.@." entry.Catalog.name Gate_spec.pp entry.Catalog.spec;
  let families =
    Cell_netlist.[ Tg_static; Tg_pseudo; Pass_pseudo; Pass_static ]
    @ (if Catalog.is_cmos_expressible entry then [ Cell_netlist.Cmos ] else [])
  in
  List.iter
    (fun fam ->
      let cell = Cell_netlist.elaborate fam entry.Catalog.spec in
      Format.printf "--- %s ---@." (Cell_netlist.family_name fam);
      Format.printf "%a@." Cell_netlist.pp_cell cell;
      let r = Charlib.characterize fam entry in
      Format.printf
        "T=%d  area=%.2f  FO4 worst=%.2f avg=%.2f  (tau = %.2f ps)@."
        r.Charlib.transistors r.Charlib.area r.Charlib.fo4_worst
        r.Charlib.fo4_avg (Charlib.tau_ps fam);
      Format.printf "full swing on all inputs: %b@."
        (Switchsim.full_swing cell);
      (match Paper_data.table2_find entry.Catalog.name with
      | row ->
          let p =
            match fam with
            | Cell_netlist.Tg_static -> Some row.Paper_data.tg_static
            | Cell_netlist.Tg_pseudo -> Some row.Paper_data.tg_pseudo
            | Cell_netlist.Pass_pseudo -> Some row.Paper_data.pass_pseudo
            | Cell_netlist.Cmos -> row.Paper_data.cmos
            | Cell_netlist.Pass_static -> None
          in
          (match p with
          | Some p ->
              Format.printf "paper:  T=%d area=%.1f w=%.1f a=%.1f@."
                p.Paper_data.t p.Paper_data.a p.Paper_data.w p.Paper_data.avg
          | None -> ())
      | exception Not_found -> ());
      Format.printf "@.")
    families
