(* The multiplier experiment: C6288 (a 16x16 carry-save array multiplier)
   shows the largest CNTFET speed-up in the paper (~10x).  This example
   runs the full flow on the multiplier, verifies the mapping by random
   simulation against the original circuit, and prints the Table 3 row.

     dune exec examples/multiplier_flow.exe *)

let () =
  let aig = Arith.multiplier 16 in
  Format.printf "C6288-like multiplier: %a@." Aig.pp_stats aig;
  let opt = Synth.resyn2rs aig in
  Format.printf "after resyn2rs:        %a@." Aig.pp_stats opt;

  let rng = Rand64.create 1234L in
  let check mapped =
    (* 512 random 32-bit multiplications against the mapped netlist *)
    let ok = ref true in
    for _ = 1 to 8 do
      let words = Array.init (Aig.num_inputs aig) (fun _ -> Rand64.next rng) in
      if Aig.simulate_outputs aig words <> Mapped.simulate mapped words then
        ok := false
    done;
    !ok
  in
  let cmos_ps = ref nan in
  List.iter
    (fun family ->
      let m = Mapper.map (Core.library family) opt in
      let s = Mapped.stats m in
      if family = `Cmos then cmos_ps := s.Mapped.abs_delay_ps;
      Format.printf "%-18s %a   verified=%b@."
        (Cell_lib.name (Core.library family))
        Mapped.pp_stats m (check m))
    [ `Cmos; `Tg_static; `Tg_pseudo ];
  let s = Mapped.stats (Mapper.map (Core.library `Tg_static) opt) in
  Format.printf "static speed-up over CMOS: %.1fx (paper: ~10x on C6288)@."
    (!cmos_ps /. s.Mapped.abs_delay_ps)
