(* Quickstart: build a circuit, optimize, map to the ambipolar CNTFET
   static library, inspect the result.

     dune exec examples/quickstart.exe *)

let () =
  (* an 8-bit ripple adder built through the bit-vector helpers *)
  let aig = Arith.adder 8 in
  Format.printf "circuit:   %a@." Aig.pp_stats aig;

  (* the whole flow in one call: resyn2rs-style optimization, mapping to
     the transmission-gate static family, simulation-based verification *)
  let r = Core.run ~family:`Tg_static aig in
  Format.printf "optimized: %a@." Aig.pp_stats r.Core.optimized;
  Format.printf "mapped:    %a@." Mapped.pp_stats r.Core.mapped;

  (* which library cells were used?  XOR-rich cells (F01, F04...) are what
     the paper's library buys over CMOS. *)
  Format.printf "cells:@.";
  List.iter
    (fun (name, count) -> Format.printf "  %-4s x%d@." name count)
    (Mapped.count_cells r.Core.mapped);

  (* evaluate the mapped netlist: 23 + 42 = 65 *)
  let bits v = Array.init 8 (fun i -> v land (1 lsl i) <> 0) in
  let input = Array.concat [ bits 23; bits 42; [| false |] ] in
  let out = Mapped.eval r.Core.mapped input in
  let value =
    Array.to_list out |> List.rev
    |> List.fold_left (fun acc b -> (2 * acc) + if b then 1 else 0) 0
  in
  Format.printf "23 + 42 computed by the mapped netlist: %d@." value
